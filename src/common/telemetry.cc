#include "common/telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace dskg::telemetry {
namespace {

// JSON string escaping for query texts / span names.
void AppendJsonEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

// Shortest-ish deterministic double rendering that round-trips the
// values we emit (counts, micros, quantile bucket edges).
std::string NumToJson(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string NumToJson(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
// become underscored.
std::string PromName(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

bool EnvDisablesTelemetry() {
  const char* v = std::getenv("DSKG_TELEMETRY");
  if (v == nullptr) return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0 || std::strcmp(v, "OFF") == 0;
}

}  // namespace

size_t ThreadStripeIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

// ---------------------------------------------------------------------------
// Histogram

double Histogram::Quantile(double q) const {
  q = std::min(1.0, std::max(0.0, q));
  uint64_t buckets[kNumBuckets];
  MergedBuckets(buckets);
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) total += buckets[i];
  if (total == 0) return 0.0;
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += buckets[i];
    if (cum >= rank) {
      const uint64_t upper = BucketUpper(i);
      const uint64_t mx = max_.load(std::memory_order_relaxed);
      return static_cast<double>(std::min(upper, mx));
    }
  }
  return static_cast<double>(max_.load(std::memory_order_relaxed));
}

Histogram::Summary Histogram::Summarize() const {
  Summary s;
  s.count = count();
  s.sum = sum();
  s.min = min_value();
  s.max = max_value();
  if (s.count > 0) {
    s.p50 = Quantile(0.50);
    s.p95 = Quantile(0.95);
    s.p99 = Quantile(0.99);
  }
  return s;
}

// ---------------------------------------------------------------------------
// TraceSink

void TraceSink::set_capacity(size_t n) {
  capacity_.store(n, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  while (ring_.size() > n) ring_.pop_front();
}

void TraceSink::Record(const char* name, double start_us, double dur_us) {
  const size_t cap = capacity_.load(std::memory_order_relaxed);
  if (cap == 0) return;
  const uint64_t seq = total_.fetch_add(1, std::memory_order_relaxed);
  Span span;
  span.seq = seq;
  span.name = name;
  span.start_us = start_us;
  span.dur_us = dur_us;
  span.thread = ThreadStripeIndex();
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(span));
  while (ring_.size() > cap) ring_.pop_front();
}

std::vector<TraceSink::Span> TraceSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Span>(ring_.begin(), ring_.end());
}

void TraceSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// SlowQueryLog

void SlowQueryLog::MaybeRecord(std::string_view text, const char* route,
                               double wall_ms) {
  const double threshold = threshold_ms();
  if (threshold <= 0 || wall_ms < threshold) return;
  const uint64_t seq = total_.fetch_add(1, std::memory_order_relaxed);
  Entry e;
  e.seq = seq;
  e.wall_ms = wall_ms;
  e.route = route;
  e.text = std::string(text.substr(0, kMaxText));
  std::lock_guard<std::mutex> lock(mu_);
  ring_.push_back(std::move(e));
  while (ring_.size() > kCapacity) ring_.pop_front();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<Entry>(ring_.begin(), ring_.end());
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  total_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::MetricsRegistry(bool from_env) {
  if (from_env) {
    if (EnvDisablesTelemetry()) enabled_.store(false);
    if (const char* ms = std::getenv("DSKG_SLOW_QUERY_MS")) {
      slow_queries_.set_threshold_ms(std::atof(ms));
    }
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: metric pointers handed out to subsystems must
  // outlive every static destructor.
  static MetricsRegistry* g = new MetricsRegistry(/*from_env=*/true);
  return *g;
}

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::DumpJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":";
    out += NumToJson(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":";
    out += NumToJson(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"';
    AppendJsonEscaped(&out, name);
    out += "\":{";
    const Histogram::Summary s = h->Summarize();
    out += "\"count\":" + NumToJson(s.count);
    out += ",\"sum\":" + NumToJson(s.sum);
    out += ",\"min\":" + NumToJson(s.min);
    out += ",\"max\":" + NumToJson(s.max);
    out += ",\"p50\":" + NumToJson(s.p50);
    out += ",\"p95\":" + NumToJson(s.p95);
    out += ",\"p99\":" + NumToJson(s.p99);
    out += ",\"buckets\":[";
    uint64_t buckets[Histogram::kNumBuckets];
    h->MergedBuckets(buckets);
    int last = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (buckets[i] != 0) last = i;
    }
    uint64_t cum = 0;
    for (int i = 0; i <= last; ++i) {
      cum += buckets[i];
      if (i > 0) out += ',';
      out += "{\"le\":" + NumToJson(Histogram::BucketUpper(i)) +
             ",\"count\":" + NumToJson(cum) + '}';
    }
    // Terminal +Inf bucket carries the total, even for empty histograms.
    if (last >= 0) out += ',';
    out += "{\"le\":\"+Inf\",\"count\":" + NumToJson(cum) + "}]}";
  }
  out += "},\"slow_queries\":[";
  const auto slow = slow_queries_.Snapshot();
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"seq\":" + NumToJson(slow[i].seq);
    out += ",\"wall_ms\":" + NumToJson(slow[i].wall_ms);
    out += ",\"route\":\"";
    AppendJsonEscaped(&out, slow[i].route);
    out += "\",\"text\":\"";
    AppendJsonEscaped(&out, slow[i].text);
    out += "\"}";
  }
  out += "],\"spans\":[";
  const auto spans = traces_.Snapshot();
  for (size_t i = 0; i < spans.size(); ++i) {
    if (i > 0) out += ',';
    out += "{\"seq\":" + NumToJson(spans[i].seq);
    out += ",\"name\":\"";
    AppendJsonEscaped(&out, spans[i].name);
    out += "\",\"start_us\":" + NumToJson(spans[i].start_us);
    out += ",\"dur_us\":" + NumToJson(spans[i].dur_us);
    out += ",\"thread\":" + NumToJson(static_cast<uint64_t>(spans[i].thread));
    out += '}';
  }
  out += "]}";
  return out;
}

std::string MetricsRegistry::DumpText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& [name, c] : counters_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " counter\n";
    out += p + ' ' + NumToJson(c->value()) + '\n';
  }
  for (const auto& [name, g] : gauges_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + ' ' + NumToJson(g->value()) + '\n';
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = PromName(name);
    out += "# TYPE " + p + " histogram\n";
    uint64_t buckets[Histogram::kNumBuckets];
    h->MergedBuckets(buckets);
    int last = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (buckets[i] != 0) last = i;
    }
    uint64_t cum = 0;
    for (int i = 0; i <= last; ++i) {
      cum += buckets[i];
      out += p + "_bucket{le=\"" + NumToJson(Histogram::BucketUpper(i)) +
             "\"} " + NumToJson(cum) + '\n';
    }
    out += p + "_bucket{le=\"+Inf\"} " + NumToJson(cum) + '\n';
    out += p + "_sum " + NumToJson(h->sum()) + '\n';
    out += p + "_count " + NumToJson(h->count()) + '\n';
  }
  return out;
}

std::map<std::string, double> MetricsRegistry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_) {
    out[name] = static_cast<double>(c->value());
  }
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Summary s = h->Summarize();
    out[name + ".count"] = static_cast<double>(s.count);
    out[name + ".sum"] = s.sum;
    out[name + ".p50"] = s.p50;
    out[name + ".p95"] = s.p95;
    out[name + ".p99"] = s.p99;
    out[name + ".max"] = static_cast<double>(s.max);
  }
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
  traces_.Clear();
  slow_queries_.Clear();
}

}  // namespace dskg::telemetry
