#ifndef DSKG_COMMON_STATUS_H_
#define DSKG_COMMON_STATUS_H_

/// \file status.h
/// Error handling primitives for DSKG.
///
/// The library does not throw exceptions across its public API. Fallible
/// operations return a `Status`, or a `Result<T>` when they also produce a
/// value — the same convention used by Arrow and RocksDB. `Status` is cheap
/// to copy in the OK case (a single pointer-sized load) because the OK state
/// carries no payload.

#include <cassert>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace dskg {

/// Machine-readable category of a `Status`.
enum class StatusCode : int {
  kOk = 0,
  /// A caller-supplied argument is malformed (bad query text, bad config).
  kInvalidArgument = 1,
  /// A referenced object (predicate, partition, view) does not exist.
  kNotFound = 2,
  /// An object being created already exists.
  kAlreadyExists = 3,
  /// A storage budget or structural limit would be exceeded.
  kCapacityExceeded = 4,
  /// Execution was cooperatively cancelled (e.g. counterfactual cutoff).
  kCancelled = 5,
  /// The operation is not valid in the current state of the store.
  kFailedPrecondition = 6,
  /// Input text could not be parsed.
  kParseError = 7,
  /// I/O failure when reading/writing datasets.
  kIoError = 8,
  /// Catch-all for internal invariant violations.
  kInternal = 9,
};

/// Returns a human-readable name for `code` (e.g. "NotFound").
const char* StatusCodeToString(StatusCode code);

/// Outcome of a fallible operation: a code plus, when not OK, a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. `code` must not
  /// be `StatusCode::kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(message)})) {
    assert(code != StatusCode::kOk);
  }

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  /// Message associated with a non-OK status; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsCapacityExceeded() const {
    return code() == StatusCode::kCapacityExceeded;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. Shared so Status copies are cheap even with messages.
  std::shared_ptr<const Rep> rep_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type `T` or a non-OK `Status` explaining its absence.
///
/// Usage:
/// \code
///   Result<Query> q = Parser::Parse(text);
///   if (!q.ok()) return q.status();
///   Use(q.value());
/// \endcode
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : rep_(std::in_place_index<0>, std::move(value)) {}
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : rep_(std::in_place_index<1>, std::move(status)) {
    assert(!std::get<1>(rep_).ok() &&
           "Result must not be constructed from an OK Status");
  }

  bool ok() const { return rep_.index() == 0; }

  /// The failure status; `Status::OK()` when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<1>(rep_);
  }

  /// The held value. Requires `ok()`.
  const T& value() const& {
    assert(ok());
    return std::get<0>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(rep_));
  }

  /// Moves the value out. Requires `ok()`.
  T ValueOrDie() && {
    assert(ok());
    return std::get<0>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK `Status` expression to the caller.
#define DSKG_RETURN_NOT_OK(expr)                 \
  do {                                           \
    ::dskg::Status _dskg_status = (expr);        \
    if (!_dskg_status.ok()) return _dskg_status; \
  } while (false)

/// Evaluates a `Result<T>` expression, assigning the value to `lhs` or
/// propagating the failure status to the caller.
#define DSKG_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto DSKG_CONCAT_(_dskg_result, __LINE__) = (rexpr); \
  if (!DSKG_CONCAT_(_dskg_result, __LINE__).ok())      \
    return DSKG_CONCAT_(_dskg_result, __LINE__).status(); \
  lhs = std::move(DSKG_CONCAT_(_dskg_result, __LINE__)).ValueOrDie()

#define DSKG_CONCAT_IMPL_(a, b) a##b
#define DSKG_CONCAT_(a, b) DSKG_CONCAT_IMPL_(a, b)

}  // namespace dskg

#endif  // DSKG_COMMON_STATUS_H_
