#include "common/str_util.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

namespace dskg {

std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || delims.find(s[i]) != std::string_view::npos) {
      if (i > start) out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view TrimWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string AsciiToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[64];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64 " B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace dskg
