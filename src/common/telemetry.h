#ifndef DSKG_COMMON_TELEMETRY_H_
#define DSKG_COMMON_TELEMETRY_H_

/// \file telemetry.h
/// Runtime telemetry: a process-wide registry of named counters, gauges
/// and log-bucketed latency histograms, plus lightweight wall-clock trace
/// spans and a threshold-driven slow-query log.
///
/// Everything here observes; nothing decides. Simulated cost accounting
/// (common/cost.h) stays the experiments' single source of truth — the
/// registry never touches a `CostMeter`, so enabling or disabling
/// telemetry cannot move a single simulated charge (the equivalence test
/// asserts this bit-for-bit).
///
/// Write path design — *atomic, thread-sharded on write, merged on read*:
///
///   * `Counter` increments land in one of a fixed set of cache-line-
///     padded stripes picked by a per-thread index, so concurrent writers
///     never contend on one cache line; `value()` folds the stripes.
///     A component that needs its *own* view of a process-wide counter
///     (e.g. per-`Session` stats) allocates a dedicated `Cell` — its
///     private source of truth, still folded into the global total.
///   * `Histogram` buckets are log-spaced (4 sub-buckets per octave,
///     <= 25% relative bucket width) with striped atomic bucket arrays;
///     `Quantile()` merges on read and returns an upper bound of the
///     bucket holding the requested rank (clamped to the observed max),
///     so p50/p95/p99 are never under-reported beyond bucket resolution.
///   * `Gauge` is a plain atomic double (`Set`/`Add`).
///
/// `TraceScope` is an RAII span over `Stopwatch`: on destruction it
/// records its wall-clock duration into a histogram and, when the ring-
/// buffer `TraceSink` is enabled, appends a `{name, start, duration,
/// thread}` span. `SlowQueryLog` keeps the last N queries whose wall
/// clock exceeded a configurable threshold.
///
/// Export is two-format: `DumpJson()` (nested, machine-readable — the
/// bench harness embeds it in every `--json` record and
/// `ci/check_telemetry_schema.py` validates it) and `DumpText()`
/// (Prometheus exposition style). Both iterate sorted names, so output
/// is deterministic for a given metric state.
///
/// Overhead: a disabled registry (`set_enabled(false)`, or env
/// `DSKG_TELEMETRY=0`) reduces every `TraceScope`/`Record` to a relaxed
/// load and a branch. Counters stay live even when disabled — they are
/// the single source of truth behind compatibility views like
/// `Session::stats()`, which must keep counting either way. CI guards
/// the enabled-mode cost: instrumented flagship wall-clock must stay
/// within 1.05x of the uninstrumented run.

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/stopwatch.h"

namespace dskg::telemetry {

/// Per-thread stripe index (assigned once per thread, monotone).
size_t ThreadStripeIndex();

/// A named monotone counter, striped on write, merged on read.
class Counter {
 public:
  /// One cache-line-padded write slot. `Add`/`value` are wait-free.
  class Cell {
   public:
    void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    uint64_t value() const { return v_.load(std::memory_order_relaxed); }
    void Reset() { v_.store(0, std::memory_order_relaxed); }

   private:
    alignas(64) std::atomic<uint64_t> v_{0};
  };

  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  const std::string& name() const { return name_; }

  /// Adds `n` to this thread's stripe. Wait-free, no contention across
  /// threads with distinct stripe indexes.
  void Add(uint64_t n = 1) {
    stripes_[ThreadStripeIndex() % kStripes].Add(n);
  }

  /// A dedicated write cell owned by one component (folded into
  /// `value()` like every stripe). The cell lives as long as the
  /// counter; a component reading only its own cells gets an exact
  /// private view with no global interference.
  Cell* NewCell() {
    std::lock_guard<std::mutex> lock(mu_);
    cells_.emplace_back();
    return &cells_.back();
  }

  /// The merged total across all stripes and dedicated cells.
  uint64_t value() const {
    uint64_t total = 0;
    for (const Cell& c : stripes_) total += c.value();
    std::lock_guard<std::mutex> lock(mu_);
    for (const Cell& c : cells_) total += c.value();
    return total;
  }

  /// Zeroes every stripe and cell. Not synchronized with writers.
  void Reset() {
    for (Cell& c : stripes_) c.Reset();
    std::lock_guard<std::mutex> lock(mu_);
    for (Cell& c : cells_) c.Reset();
  }

 private:
  static constexpr size_t kStripes = 16;

  std::string name_;
  std::array<Cell, kStripes> stripes_;
  mutable std::mutex mu_;   // guards `cells_` growth/iteration
  std::deque<Cell> cells_;  // stable addresses
};

/// A named instantaneous value (queue depth, drift fraction, ...).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  const std::string& name() const { return name_; }
  void Set(double v) { v_.store(v, std::memory_order_relaxed); }
  void Add(double d) { v_.fetch_add(d, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::string name_;
  std::atomic<double> v_{0.0};
};

/// A named log-bucketed histogram of non-negative values (wall-clock
/// microseconds by convention; any count works).
class Histogram {
 public:
  /// 4 sub-buckets per power of two: relative bucket width <= 25%.
  static constexpr int kSubBits = 2;
  /// Buckets 0..3 are exact; 4..251 cover [4, 2^63) log-spaced.
  static constexpr int kNumBuckets = 252;

  /// Bucket index of value `u` (monotone in `u`).
  static int BucketOf(uint64_t u) {
    if (u < (1ull << kSubBits)) return static_cast<int>(u);
    const int msb = 63 - __builtin_clzll(u);
    const int sub = static_cast<int>((u >> (msb - kSubBits)) &
                                     ((1ull << kSubBits) - 1));
    const int idx = ((msb - kSubBits + 1) << kSubBits) + sub;
    return idx < kNumBuckets ? idx : kNumBuckets - 1;
  }

  /// Smallest value mapping to bucket `idx`.
  static uint64_t BucketLower(int idx) {
    if (idx < (1 << kSubBits)) return static_cast<uint64_t>(idx);
    const int msb = (idx >> kSubBits) + kSubBits - 1;
    const uint64_t sub = static_cast<uint64_t>(idx & ((1 << kSubBits) - 1));
    return (1ull << msb) + (sub << (msb - kSubBits));
  }

  /// Largest value mapping to bucket `idx` (inclusive).
  static uint64_t BucketUpper(int idx) {
    return idx + 1 < kNumBuckets ? BucketLower(idx + 1) - 1
                                 : ~static_cast<uint64_t>(0);
  }

  explicit Histogram(std::string name) : name_(std::move(name)) {
    for (Stripe& s : stripes_) {
      for (std::atomic<uint64_t>& b : s.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
    }
  }
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  const std::string& name() const { return name_; }

  /// Records one observation (negative values clamp to 0).
  void Record(double value) {
    const uint64_t u =
        value > 0 ? static_cast<uint64_t>(value + 0.5) : 0;
    Stripe& s = stripes_[ThreadStripeIndex() % kStripes];
    s.buckets[BucketOf(u)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value > 0 ? value : 0.0, std::memory_order_relaxed);
    uint64_t prev = max_.load(std::memory_order_relaxed);
    while (u > prev &&
           !max_.compare_exchange_weak(prev, u, std::memory_order_relaxed)) {
    }
    prev = min_.load(std::memory_order_relaxed);
    while (u < prev &&
           !min_.compare_exchange_weak(prev, u, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Largest value recorded (0 when empty).
  uint64_t max_value() const {
    return count() > 0 ? max_.load(std::memory_order_relaxed) : 0;
  }
  /// Smallest value recorded (0 when empty).
  uint64_t min_value() const {
    return count() > 0 ? min_.load(std::memory_order_relaxed) : 0;
  }

  /// Merges the stripes' bucket counts into `out[kNumBuckets]`.
  void MergedBuckets(uint64_t* out) const {
    for (int i = 0; i < kNumBuckets; ++i) out[i] = 0;
    for (const Stripe& s : stripes_) {
      for (int i = 0; i < kNumBuckets; ++i) {
        out[i] += s.buckets[i].load(std::memory_order_relaxed);
      }
    }
  }

  /// Upper bound on the q-quantile (0 <= q <= 1): the upper edge of the
  /// bucket holding rank ceil(q * count), clamped to the observed max.
  /// The true rank-th value always lies in the returned value's bucket.
  double Quantile(double q) const;

  struct Summary {
    uint64_t count = 0;
    double sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
  };
  Summary Summarize() const;

  void Reset() {
    for (Stripe& s : stripes_) {
      for (std::atomic<uint64_t>& b : s.buckets) {
        b.store(0, std::memory_order_relaxed);
      }
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
    min_.store(~static_cast<uint64_t>(0), std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kStripes = 4;
  struct Stripe {
    alignas(64) std::array<std::atomic<uint64_t>, kNumBuckets> buckets;
  };

  std::string name_;
  std::array<Stripe, kStripes> stripes_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<uint64_t> max_{0};
  std::atomic<uint64_t> min_{~static_cast<uint64_t>(0)};
};

/// Bounded ring buffer of completed trace spans. Disabled (capacity 0)
/// by default — recording then costs one relaxed load.
class TraceSink {
 public:
  struct Span {
    uint64_t seq = 0;       ///< monotone completion index
    std::string name;       ///< span name (e.g. "session.execute")
    double start_us = 0;    ///< registry-relative wall-clock start
    double dur_us = 0;      ///< wall-clock duration
    size_t thread = 0;      ///< recording thread's stripe index
  };

  bool enabled() const {
    return capacity_.load(std::memory_order_relaxed) > 0;
  }
  /// Keeps the most recent `n` spans (0 disables). Shrinking drops the
  /// oldest immediately.
  void set_capacity(size_t n);

  void Record(const char* name, double start_us, double dur_us);

  /// Spans recorded since the sink was enabled (survives ring eviction).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  /// Copy of the ring, oldest first.
  std::vector<Span> Snapshot() const;

  void Clear();

 private:
  std::atomic<size_t> capacity_{0};
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::deque<Span> ring_;
};

/// Keeps the most recent queries whose wall clock crossed a threshold.
/// Disabled by default (threshold 0); enable with `set_threshold_ms` or
/// env `DSKG_SLOW_QUERY_MS`.
class SlowQueryLog {
 public:
  struct Entry {
    uint64_t seq = 0;     ///< monotone slow-query index
    double wall_ms = 0;   ///< the offending wall-clock latency
    std::string route;    ///< route the execution took
    std::string text;     ///< query text (truncated to kMaxText)
  };
  static constexpr size_t kMaxText = 300;
  static constexpr size_t kCapacity = 64;

  double threshold_ms() const {
    return threshold_ms_.load(std::memory_order_relaxed);
  }
  void set_threshold_ms(double ms) {
    threshold_ms_.store(ms, std::memory_order_relaxed);
  }
  bool enabled() const { return threshold_ms() > 0; }

  /// Records `text` when `wall_ms` is at or above the threshold.
  void MaybeRecord(std::string_view text, const char* route, double wall_ms);

  /// Slow queries seen since construction (survives ring eviction).
  uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  /// Copy of the ring, oldest first.
  std::vector<Entry> Snapshot() const;

  void Clear();

 private:
  std::atomic<double> threshold_ms_{0.0};
  std::atomic<uint64_t> total_{0};
  mutable std::mutex mu_;
  std::deque<Entry> ring_;
};

/// The registry: named metric instances with stable addresses, a trace
/// sink, a slow-query log, and the two exporters. `Global()` is the
/// process-wide instance every subsystem records into; tests build local
/// registries to isolate state.
class MetricsRegistry {
 public:
  /// `from_env`: initialise `enabled()` from DSKG_TELEMETRY (default on;
  /// "0"/"off"/"false" disable) and the slow-query threshold from
  /// DSKG_SLOW_QUERY_MS.
  explicit MetricsRegistry(bool from_env = false);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Global();

  /// Get-or-create; the returned pointer is stable for the registry's
  /// lifetime — call once and cache, the lookup takes a lock.
  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Gates histogram/span/slow-log recording at the instrumentation
  /// sites (they check before touching a clock). Counters are NOT gated:
  /// they back compatibility views that must keep counting.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  TraceSink& traces() { return traces_; }
  const TraceSink& traces() const { return traces_; }
  SlowQueryLog& slow_queries() { return slow_queries_; }
  const SlowQueryLog& slow_queries() const { return slow_queries_; }

  /// Microseconds of wall clock since registry construction (span
  /// timestamps are relative to this origin).
  double NowMicros() const { return origin_.ElapsedMicros(); }

  /// Structured JSON snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, min, max, p50, p95, p99,
  ///                          buckets: [{le, count(cumulative)}...]}},
  ///    "slow_queries": [...], "spans": [...]}
  /// Deterministic order (sorted names, insertion-ordered rings).
  std::string DumpJson() const;

  /// Prometheus-exposition-style text ('.' becomes '_'; histograms emit
  /// cumulative _bucket{le=...} lines plus _sum and _count).
  std::string DumpText() const;

  /// Flat name -> value view for programmatic deltas (counters and
  /// gauges by name; histograms as name+".count"/".sum"/".p50"/
  /// ".p95"/".p99"/".max").
  std::map<std::string, double> SnapshotValues() const;

  /// Zeroes every metric and clears the rings. Not synchronized with
  /// concurrent writers; quiesce first.
  void Reset();

 private:
  std::atomic<bool> enabled_{true};
  Stopwatch origin_;
  mutable std::mutex mu_;  // guards the maps (not the metrics)
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  TraceSink traces_;
  SlowQueryLog slow_queries_;
};

/// RAII wall-clock span: on destruction records the elapsed time into
/// `hist` (when non-null) and appends a span to the registry's trace
/// sink (when that is enabled). When the registry is disabled at
/// construction the scope is inert — no clock is read.
class TraceScope {
 public:
  TraceScope(MetricsRegistry& reg, Histogram* hist, const char* name)
      : reg_(reg.enabled() ? &reg : nullptr), hist_(hist), name_(name) {
    if (reg_ != nullptr) start_us_ = reg_->NowMicros();
  }

  /// Spans against the global registry.
  TraceScope(Histogram* hist, const char* name)
      : TraceScope(MetricsRegistry::Global(), hist, name) {}

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

  ~TraceScope() {
    if (reg_ == nullptr) return;
    const double dur = reg_->NowMicros() - start_us_;
    if (hist_ != nullptr) hist_->Record(dur);
    if (reg_->traces().enabled()) {
      reg_->traces().Record(name_, start_us_, dur);
    }
  }

 private:
  MetricsRegistry* reg_;
  Histogram* hist_;
  const char* name_;
  double start_us_ = 0;
};

}  // namespace dskg::telemetry

#endif  // DSKG_COMMON_TELEMETRY_H_
