#include "common/cost.h"

#include <cstdio>

namespace dskg {

const char* OpName(Op op) {
  switch (op) {
    case Op::kSeqScanTuple: return "seq_scan_tuple";
    case Op::kIndexProbe: return "index_probe";
    case Op::kIndexScanTuple: return "index_scan_tuple";
    case Op::kHashBuildTuple: return "hash_build_tuple";
    case Op::kHashProbeTuple: return "hash_probe_tuple";
    case Op::kJoinOutputTuple: return "join_output_tuple";
    case Op::kMaterializeTuple: return "materialize_tuple";
    case Op::kSortTuple: return "sort_tuple";
    case Op::kViewLookup: return "view_lookup";
    case Op::kViewScanTuple: return "view_scan_tuple";
    case Op::kTempTableTuple: return "temp_table_tuple";
    case Op::kInsertTuple: return "insert_tuple";
    case Op::kRemoveTuple: return "remove_tuple";
    case Op::kNodeLookup: return "node_lookup";
    case Op::kAdjExpandEdge: return "adj_expand_edge";
    case Op::kBindCheck: return "bind_check";
    case Op::kImportTriple: return "import_triple";
    case Op::kEvictTriple: return "evict_triple";
    case Op::kMigrateResultRow: return "migrate_result_row";
    case Op::kMigratePartitionTriple: return "migrate_partition_triple";
    case Op::kNumOps: break;
  }
  return "unknown";
}

ResourceClass OpResourceClass(Op op) {
  switch (op) {
    // Disk/page-oriented work in the relational engine and all bulk data
    // movement is IO-class.
    case Op::kSeqScanTuple:
    case Op::kIndexProbe:
    case Op::kIndexScanTuple:
    case Op::kMaterializeTuple:
    case Op::kViewLookup:
    case Op::kViewScanTuple:
    case Op::kTempTableTuple:
    case Op::kInsertTuple:
    case Op::kRemoveTuple:
    case Op::kImportTriple:
    case Op::kEvictTriple:
    case Op::kMigrateResultRow:
    case Op::kMigratePartitionTriple:
      return ResourceClass::kIo;
    // In-memory joins and index-free adjacency traversal are CPU-class.
    case Op::kHashBuildTuple:
    case Op::kHashProbeTuple:
    case Op::kJoinOutputTuple:
    case Op::kSortTuple:
    case Op::kNodeLookup:
    case Op::kAdjExpandEdge:
    case Op::kBindCheck:
      return ResourceClass::kCpu;
    case Op::kNumOps:
      break;
  }
  return ResourceClass::kCpu;
}

double ResourceThrottle::Factor(ResourceClass rc) const {
  // Calibrated against the paper's Table 6: with 40%/20% spare IO the
  // graph store slows by under 0.5%; with 40%/20% spare CPU it slows by
  // roughly 5%/18%. The hyperbolic form 1 + beta*(1-f)/f reproduces that
  // shape: f=0.4 -> 1+1.5*beta, f=0.2 -> 1+4*beta.
  constexpr double kBetaIo = 0.0020;
  constexpr double kBetaCpu = 0.0450;
  const double f = (rc == ResourceClass::kIo) ? spare_io_fraction
                                              : spare_cpu_fraction;
  if (f >= 1.0) return 1.0;
  const double clamped = f < 0.01 ? 0.01 : f;
  const double beta = (rc == ResourceClass::kIo) ? kBetaIo : kBetaCpu;
  return 1.0 + beta * (1.0 - clamped) / clamped;
}

CostModel::CostModel() {
  // Calibration rationale. The paper's Table 1 runs a 3-pattern complex
  // query (advisor born in the same city) on MySQL and Neo4j from 0.5M to
  // 5M triples: MySQL goes from ~11s to ~99s (roughly linear in |G|),
  // Neo4j stays in 0.6-4s (proportional to the traversal range only).
  // The weights below encode a disk-based row store (tuple reads and
  // intermediate materialization dominate; MySQL's join pipeline
  // materializes) versus a memory-mapped native graph store (pointer-
  // chasing expansions are cheap; bulk import is notoriously expensive,
  // which is exactly why the paper treats the graph store as a
  // capacity-bounded accelerator rather than the primary store).
  // Relational (disk-based row store): ~0.5-1us per tuple touched — page
  // access amortization, row-format parsing, and tmp-table materialization
  // between join steps. Graph (memory-mapped native store): ~0.1us per
  // vertex record fetch and tens of nanoseconds per adjacency pointer
  // chase. These relative magnitudes put the flagship query's
  // relational/graph ratio in the paper's 9-25x band across the Table 1
  // sweep.
  weights_.fill(0.0);
  set_weight(Op::kSeqScanTuple, 0.500);
  set_weight(Op::kIndexProbe, 2.000);
  set_weight(Op::kIndexScanTuple, 0.550);
  set_weight(Op::kHashBuildTuple, 0.150);
  set_weight(Op::kHashProbeTuple, 0.100);
  set_weight(Op::kJoinOutputTuple, 0.100);
  set_weight(Op::kMaterializeTuple, 0.800);
  set_weight(Op::kSortTuple, 0.200);
  set_weight(Op::kViewLookup, 250.0);
  set_weight(Op::kViewScanTuple, 0.250);
  set_weight(Op::kTempTableTuple, 0.400);
  set_weight(Op::kInsertTuple, 1.200);
  set_weight(Op::kRemoveTuple, 1.200);  // same index maintenance as insert
  set_weight(Op::kNodeLookup, 0.100);
  set_weight(Op::kAdjExpandEdge, 0.015);
  set_weight(Op::kBindCheck, 0.008);
  set_weight(Op::kImportTriple, 8.000);
  set_weight(Op::kEvictTriple, 0.800);
  set_weight(Op::kMigrateResultRow, 0.300);
  set_weight(Op::kMigratePartitionTriple, 2.000);
}

const CostModel& CostModel::Default() {
  static const CostModel kDefault;
  return kDefault;
}

std::string CostMeter::DebugString() const {
  std::string out;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "sim=%.1fus (io=%.1fus cpu=%.1fus)\n", sim_micros(),
                io_micros(), cpu_micros());
  out += buf;
  for (int i = 0; i < kNumOps; ++i) {
    const uint64_t n = counts_[i].load(std::memory_order_relaxed);
    if (n == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-26s %12llu\n",
                  OpName(static_cast<Op>(i)),
                  static_cast<unsigned long long>(n));
    out += buf;
  }
  return out;
}

}  // namespace dskg
