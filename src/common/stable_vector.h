#ifndef DSKG_COMMON_STABLE_VECTOR_H_
#define DSKG_COMMON_STABLE_VECTOR_H_

/// \file stable_vector.h
/// Chunked append-only storage with stable element addresses.
///
/// `std::vector` reallocates on growth, which moves every element — fatal
/// for the single-writer / many-reader structures of the online store,
/// where epoch-pinned readers traverse B+-tree nodes and dictionary spans
/// *while* the applier appends. `StableVector` keeps elements in a
/// geometric series of heap chunks (64, 64, 128, 256, ... elements) that
/// are never moved or freed before destruction, and publishes each new
/// chunk pointer and the logical size through atomics:
///
///   * exactly one writer may `push_back`/`emplace_back`/mutate slots;
///   * any number of readers may concurrently index elements they learned
///     about through a properly published root (acquire on the size or on
///     an external snapshot pointer) — the element address never changes.
///
/// Element *values* are not atomic: the writer must not mutate a slot
/// that a concurrent reader may read (the copy-on-write discipline of the
/// callers guarantees writers only touch unpublished or drained slots).
///
/// Indexing is O(1): chunk c holds `kBase << c` elements, so the chunk
/// for index i and the offset within it fall out of one `bit_width`.

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>

namespace dskg {

template <typename T>
class StableVector {
 public:
  /// log2 of the first chunk's element count.
  static constexpr size_t kBaseLog2 = 6;
  static constexpr size_t kBase = size_t{1} << kBaseLog2;
  static constexpr size_t kMaxChunks = 32;

  StableVector() = default;

  StableVector(const StableVector&) = delete;
  StableVector& operator=(const StableVector&) = delete;
  StableVector(StableVector&&) = delete;
  StableVector& operator=(StableVector&&) = delete;

  ~StableVector() {
    for (size_t c = 0; c < kMaxChunks; ++c) {
      delete[] chunks_[c].load(std::memory_order_relaxed);
    }
  }

  /// Logical element count (acquire: pairs with the writer's release so a
  /// reader that observes size i may read every element below i).
  size_t size() const { return size_.load(std::memory_order_acquire); }
  bool empty() const { return size() == 0; }

  T& operator[](size_t i) { return *Slot(i); }
  const T& operator[](size_t i) const { return *Slot(i); }

  /// Appends a value (single writer only).
  void push_back(const T& v) { emplace_back() = v; }
  void push_back(T&& v) { emplace_back() = std::move(v); }

  /// Appends a default-constructed element and returns it (single
  /// writer only). The new element is visible to readers that observe
  /// the incremented size (or any snapshot published after this call).
  T& emplace_back() {
    const size_t i = size_.load(std::memory_order_relaxed);
    EnsureChunkFor(i);
    T* slot = Slot(i);
    *slot = T{};
    size_.store(i + 1, std::memory_order_release);
    return *slot;
  }

  /// Pre-allocates chunks to hold at least `n` elements (writer only).
  void reserve(size_t n) {
    if (n > 0) EnsureChunkFor(n - 1);
  }

  /// Resets the logical size to zero, keeping allocated chunks (writer
  /// only, and only when no concurrent readers exist — the bulk-load /
  /// rebuild path).
  void clear() { size_.store(0, std::memory_order_release); }

  /// Chunk bytes currently allocated (diagnostics; footprint accounting
  /// deliberately uses logical `size()` to stay slack-independent).
  uint64_t AllocatedBytes() const {
    uint64_t total = 0;
    for (size_t c = 0; c < kMaxChunks; ++c) {
      if (chunks_[c].load(std::memory_order_relaxed) != nullptr) {
        total += uint64_t{ChunkElems(c)} * sizeof(T);
      }
    }
    return total;
  }

 private:
  /// Chunk c holds `kBase << c` elements; chunks 0..c-1 hold
  /// `kBase * (2^c - 1)` elements in total.
  static size_t ChunkOf(size_t i) {
    return static_cast<size_t>(std::bit_width((i >> kBaseLog2) + 1)) - 1;
  }
  static size_t ChunkElems(size_t c) { return kBase << c; }
  static size_t ChunkBase(size_t c) { return ((size_t{1} << c) - 1) << kBaseLog2; }

  T* Slot(size_t i) const {
    const size_t c = ChunkOf(i);
    T* chunk = chunks_[c].load(std::memory_order_acquire);
    return chunk + (i - ChunkBase(c));
  }

  void EnsureChunkFor(size_t i) {
    const size_t c = ChunkOf(i);
    for (size_t k = 0; k <= c; ++k) {
      if (chunks_[k].load(std::memory_order_relaxed) == nullptr) {
        chunks_[k].store(new T[ChunkElems(k)], std::memory_order_release);
      }
    }
  }

  mutable std::atomic<T*> chunks_[kMaxChunks] = {};
  std::atomic<size_t> size_{0};
};

}  // namespace dskg

#endif  // DSKG_COMMON_STABLE_VECTOR_H_
