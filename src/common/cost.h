#ifndef DSKG_COMMON_COST_H_
#define DSKG_COMMON_COST_H_

/// \file cost.h
/// Deterministic cost accounting for both storage engines.
///
/// The paper reports wall-clock latencies measured on MySQL + Neo4j on a
/// specific server. To make the reproduction machine-independent and
/// exactly repeatable, DSKG's engines execute queries *for real* (real
/// joins, real traversals, correct result sets) and, while doing so, count
/// the primitive operations they perform: tuples scanned, B+-tree probes,
/// hash probes, adjacency expansions, triples imported, rows migrated, ...
///
/// A `CostModel` converts those operation counts into *simulated
/// microseconds* through a per-operation weight table whose defaults are
/// calibrated once against the relative magnitudes in the paper's Table 1
/// (see cost.cc). Every latency the benchmark harness reports is simulated
/// time; wall-clock is also measured but never used for decisions, so two
/// runs of any experiment produce identical numbers.
///
/// Each operation belongs to a resource class (IO-dominated or
/// CPU-dominated). A `ResourceThrottle` scales the weights of one class to
/// model running with limited *spare* resources, reproducing the paper's
/// Table 6 / Figure 7 experiments where a parallel counterfactual thread
/// competes with the graph store.

#include <array>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>

namespace dskg {

/// Primitive engine operations that carry a cost.
enum class Op : int {
  // --- relational engine ---
  kSeqScanTuple = 0,   ///< one tuple read by a full-table scan
  kIndexProbe,         ///< one B+-tree descent (root-to-leaf)
  kIndexScanTuple,     ///< one tuple read from an index range scan
  kHashBuildTuple,     ///< one tuple inserted into a join hash table
  kHashProbeTuple,     ///< one probe of a join hash table
  kJoinOutputTuple,    ///< one joined tuple emitted
  kMaterializeTuple,   ///< one tuple written to an intermediate result
  kSortTuple,          ///< one tuple passed through a sort (per compare-ish)
  kViewLookup,         ///< one materialized-view catalog lookup + open
  kViewScanTuple,      ///< one tuple read from a materialized view
  kTempTableTuple,     ///< one tuple written to the temporary table space
  kInsertTuple,        ///< one base-table insert (with index maintenance)
  kRemoveTuple,        ///< one base-table delete (with index maintenance)
  // --- graph engine ---
  kNodeLookup,         ///< one vertex record fetch by id
  kAdjExpandEdge,      ///< one edge visited via index-free adjacency
  kBindCheck,          ///< one candidate-binding consistency check
  kImportTriple,       ///< one triple bulk-imported into the graph store
  kEvictTriple,        ///< one triple evicted from the graph store
  // --- cross-store transfer ---
  kMigrateResultRow,   ///< one intermediate-result row shipped graph->rel
  kMigratePartitionTriple,  ///< one partition triple read+shipped rel->graph
  kNumOps,             ///< sentinel: number of operation kinds
};

/// Number of distinct `Op` kinds.
inline constexpr int kNumOps = static_cast<int>(Op::kNumOps);

/// Short human-readable name of `op` (e.g. "seq_scan_tuple").
const char* OpName(Op op);

/// Resource class an operation predominantly consumes.
enum class ResourceClass : int { kIo = 0, kCpu = 1 };

/// The resource class of `op`.
ResourceClass OpResourceClass(Op op);

/// Models contention from reduced *spare* resources.
///
/// With spare fraction `f` of a resource, each operation of that class is
/// slowed by factor `1 + beta * (1 - f) / f`. The betas are calibrated so
/// the graph-store slowdown matches the paper's Table 6 shape: tiny for
/// IO (graph traversal is cache-resident), noticeable for CPU.
struct ResourceThrottle {
  double spare_io_fraction = 1.0;   ///< fraction of IO bandwidth available
  double spare_cpu_fraction = 1.0;  ///< fraction of CPU available

  /// Multiplier applied to the weight of operations in class `rc`.
  double Factor(ResourceClass rc) const;

  /// True when no throttling is configured.
  bool IsNeutral() const {
    return spare_io_fraction >= 1.0 && spare_cpu_fraction >= 1.0;
  }
};

/// Per-operation weight table: simulated microseconds per operation.
class CostModel {
 public:
  /// The default model, calibrated against the paper's Table 1 (cost.cc
  /// documents the calibration).
  static const CostModel& Default();

  CostModel();

  double weight(Op op) const { return weights_[static_cast<int>(op)]; }
  void set_weight(Op op, double micros) {
    weights_[static_cast<int>(op)] = micros;
  }

 private:
  std::array<double, kNumOps> weights_;
};

/// Accumulates operation counts and simulated time for one execution scope
/// (a query, a tuning phase, a migration, ...).
///
/// A meter may carry a cost *budget*: once simulated time exceeds the
/// budget, `ExceededBudget()` turns true and cooperative engine loops abort
/// with `Status::Cancelled`. DOTIL's counterfactual scenario uses this to
/// stop the relational run of a complex subquery at λ·c₁ (Algorithm 2).
///
/// Exactness: simulated time is accumulated as *integer picoseconds*.
/// `Add` rounds the throttled per-operation weight to picoseconds once
/// (`llround(weight * factor * 1e6)`) and multiplies by the count, so the
/// charge for an operation is a pure function of (model, throttle, op) and
/// integer addition makes the totals associative and commutative:
/// charging in any order, in any grouping, from any number of threads, or
/// folding per-shard meters with `Merge` in any order yields bit-identical
/// sums. This is what lets the sharded executor, the sharded traversal
/// matcher, parallel bulk load, and parallel DOTIL probes promise charges
/// identical to their serial counterparts at every thread count. The
/// microsecond getters divide by 1e6 (exactly representable, correctly
/// rounded), so equal picosecond totals always render as equal doubles.
///
/// Thread safety: `Add` and `Merge` use relaxed atomics, so a meter may be
/// charged concurrently from several workers without losing counts or
/// picoseconds. Configuration (`set_budget_micros`, `set_throttle`,
/// `Reset`) is not synchronized and must happen before concurrent use.
class CostMeter {
 public:
  /// Meter using the default cost model and no throttle.
  CostMeter() : CostMeter(&CostModel::Default(), ResourceThrottle{}) {}

  CostMeter(const CostModel* model, ResourceThrottle throttle)
      : model_(model), throttle_(throttle) {}

  /// Copies observe the source's counters atomically (but not as one
  /// snapshot: copying a meter that is being charged concurrently may mix
  /// op counts from different instants).
  CostMeter(const CostMeter& other) { CopyFrom(other); }
  CostMeter& operator=(const CostMeter& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Records `n` occurrences of `op`. Safe to call concurrently.
  void Add(Op op, uint64_t n = 1) {
    counts_[static_cast<int>(op)].fetch_add(n, std::memory_order_relaxed);
    const ResourceClass rc = OpResourceClass(op);
    const uint64_t ps =
        static_cast<uint64_t>(
            std::llround(model_->weight(op) * throttle_.Factor(rc) * 1e6)) *
        n;
    sim_ps_.fetch_add(ps, std::memory_order_relaxed);
    if (rc == ResourceClass::kIo) {
      io_ps_.fetch_add(ps, std::memory_order_relaxed);
    } else {
      cpu_ps_.fetch_add(ps, std::memory_order_relaxed);
    }
  }

  /// Total simulated time in microseconds.
  double sim_micros() const { return ToMicros(sim_ps_); }
  /// Simulated time spent in IO-class operations.
  double io_micros() const { return ToMicros(io_ps_); }
  /// Simulated time spent in CPU-class operations.
  double cpu_micros() const { return ToMicros(cpu_ps_); }
  /// Exact integer totals in picoseconds (for bit-identity assertions).
  uint64_t sim_picos() const { return sim_ps_.load(std::memory_order_relaxed); }
  uint64_t io_picos() const { return io_ps_.load(std::memory_order_relaxed); }
  uint64_t cpu_picos() const { return cpu_ps_.load(std::memory_order_relaxed); }
  /// Count of operation `op` recorded so far.
  uint64_t count(Op op) const {
    return counts_[static_cast<int>(op)].load(std::memory_order_relaxed);
  }

  /// Sets a simulated-time budget in microseconds (<=0 disables).
  void set_budget_micros(double budget) {
    budget_micros_ = budget;
    budget_ps_ = budget > 0.0
                     ? static_cast<uint64_t>(std::llround(budget * 1e6))
                     : 0;
  }
  double budget_micros() const { return budget_micros_; }
  /// True when a budget is set and has been exceeded.
  bool ExceededBudget() const {
    return budget_ps_ > 0 &&
           sim_ps_.load(std::memory_order_relaxed) > budget_ps_;
  }

  /// Folds another meter's counts and time into this one. Safe to call
  /// concurrently on the destination; `other` must be quiescent. The
  /// folded picoseconds keep the scaling of the *source* meter's throttle,
  /// so a throttled engine meter merged into a neutral aggregate preserves
  /// its throttled charges exactly.
  void Merge(const CostMeter& other) {
    for (int i = 0; i < kNumOps; ++i) {
      counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    sim_ps_.fetch_add(other.sim_picos(), std::memory_order_relaxed);
    io_ps_.fetch_add(other.io_picos(), std::memory_order_relaxed);
    cpu_ps_.fetch_add(other.cpu_picos(), std::memory_order_relaxed);
  }

  /// Resets counts and simulated time (budget is kept). Not synchronized.
  void Reset() {
    for (int i = 0; i < kNumOps; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    sim_ps_.store(0, std::memory_order_relaxed);
    io_ps_.store(0, std::memory_order_relaxed);
    cpu_ps_.store(0, std::memory_order_relaxed);
  }

  const CostModel* model() const { return model_; }
  const ResourceThrottle& throttle() const { return throttle_; }
  void set_throttle(ResourceThrottle t) { throttle_ = t; }

  /// Multi-line human-readable dump of non-zero counters.
  std::string DebugString() const;

 private:
  static double ToMicros(const std::atomic<uint64_t>& ps) {
    return static_cast<double>(ps.load(std::memory_order_relaxed)) / 1e6;
  }

  void CopyFrom(const CostMeter& other) {
    model_ = other.model_;
    throttle_ = other.throttle_;
    for (int i = 0; i < kNumOps; ++i) {
      counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    sim_ps_.store(other.sim_picos(), std::memory_order_relaxed);
    io_ps_.store(other.io_picos(), std::memory_order_relaxed);
    cpu_ps_.store(other.cpu_picos(), std::memory_order_relaxed);
    budget_micros_ = other.budget_micros_;
    budget_ps_ = other.budget_ps_;
  }

  const CostModel* model_ = &CostModel::Default();
  ResourceThrottle throttle_;
  std::array<std::atomic<uint64_t>, kNumOps> counts_{};
  std::atomic<uint64_t> sim_ps_{0};
  std::atomic<uint64_t> io_ps_{0};
  std::atomic<uint64_t> cpu_ps_{0};
  double budget_micros_ = 0.0;
  uint64_t budget_ps_ = 0;
};

}  // namespace dskg

#endif  // DSKG_COMMON_COST_H_
