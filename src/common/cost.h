#ifndef DSKG_COMMON_COST_H_
#define DSKG_COMMON_COST_H_

/// \file cost.h
/// Deterministic cost accounting for both storage engines.
///
/// The paper reports wall-clock latencies measured on MySQL + Neo4j on a
/// specific server. To make the reproduction machine-independent and
/// exactly repeatable, DSKG's engines execute queries *for real* (real
/// joins, real traversals, correct result sets) and, while doing so, count
/// the primitive operations they perform: tuples scanned, B+-tree probes,
/// hash probes, adjacency expansions, triples imported, rows migrated, ...
///
/// A `CostModel` converts those operation counts into *simulated
/// microseconds* through a per-operation weight table whose defaults are
/// calibrated once against the relative magnitudes in the paper's Table 1
/// (see cost.cc). Every latency the benchmark harness reports is simulated
/// time; wall-clock is also measured but never used for decisions, so two
/// runs of any experiment produce identical numbers.
///
/// Each operation belongs to a resource class (IO-dominated or
/// CPU-dominated). A `ResourceThrottle` scales the weights of one class to
/// model running with limited *spare* resources, reproducing the paper's
/// Table 6 / Figure 7 experiments where a parallel counterfactual thread
/// competes with the graph store.

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace dskg {

/// Primitive engine operations that carry a cost.
enum class Op : int {
  // --- relational engine ---
  kSeqScanTuple = 0,   ///< one tuple read by a full-table scan
  kIndexProbe,         ///< one B+-tree descent (root-to-leaf)
  kIndexScanTuple,     ///< one tuple read from an index range scan
  kHashBuildTuple,     ///< one tuple inserted into a join hash table
  kHashProbeTuple,     ///< one probe of a join hash table
  kJoinOutputTuple,    ///< one joined tuple emitted
  kMaterializeTuple,   ///< one tuple written to an intermediate result
  kSortTuple,          ///< one tuple passed through a sort (per compare-ish)
  kViewLookup,         ///< one materialized-view catalog lookup + open
  kViewScanTuple,      ///< one tuple read from a materialized view
  kTempTableTuple,     ///< one tuple written to the temporary table space
  kInsertTuple,        ///< one base-table insert (with index maintenance)
  kRemoveTuple,        ///< one base-table delete (with index maintenance)
  // --- graph engine ---
  kNodeLookup,         ///< one vertex record fetch by id
  kAdjExpandEdge,      ///< one edge visited via index-free adjacency
  kBindCheck,          ///< one candidate-binding consistency check
  kImportTriple,       ///< one triple bulk-imported into the graph store
  kEvictTriple,        ///< one triple evicted from the graph store
  // --- cross-store transfer ---
  kMigrateResultRow,   ///< one intermediate-result row shipped graph->rel
  kMigratePartitionTriple,  ///< one partition triple read+shipped rel->graph
  kNumOps,             ///< sentinel: number of operation kinds
};

/// Number of distinct `Op` kinds.
inline constexpr int kNumOps = static_cast<int>(Op::kNumOps);

/// Short human-readable name of `op` (e.g. "seq_scan_tuple").
const char* OpName(Op op);

/// Resource class an operation predominantly consumes.
enum class ResourceClass : int { kIo = 0, kCpu = 1 };

/// The resource class of `op`.
ResourceClass OpResourceClass(Op op);

/// Models contention from reduced *spare* resources.
///
/// With spare fraction `f` of a resource, each operation of that class is
/// slowed by factor `1 + beta * (1 - f) / f`. The betas are calibrated so
/// the graph-store slowdown matches the paper's Table 6 shape: tiny for
/// IO (graph traversal is cache-resident), noticeable for CPU.
struct ResourceThrottle {
  double spare_io_fraction = 1.0;   ///< fraction of IO bandwidth available
  double spare_cpu_fraction = 1.0;  ///< fraction of CPU available

  /// Multiplier applied to the weight of operations in class `rc`.
  double Factor(ResourceClass rc) const;

  /// True when no throttling is configured.
  bool IsNeutral() const {
    return spare_io_fraction >= 1.0 && spare_cpu_fraction >= 1.0;
  }
};

/// Per-operation weight table: simulated microseconds per operation.
class CostModel {
 public:
  /// The default model, calibrated against the paper's Table 1 (cost.cc
  /// documents the calibration).
  static const CostModel& Default();

  CostModel();

  double weight(Op op) const { return weights_[static_cast<int>(op)]; }
  void set_weight(Op op, double micros) {
    weights_[static_cast<int>(op)] = micros;
  }

 private:
  std::array<double, kNumOps> weights_;
};

/// Accumulates operation counts and simulated time for one execution scope
/// (a query, a tuning phase, a migration, ...).
///
/// A meter may carry a cost *budget*: once simulated time exceeds the
/// budget, `ExceededBudget()` turns true and cooperative engine loops abort
/// with `Status::Cancelled`. DOTIL's counterfactual scenario uses this to
/// stop the relational run of a complex subquery at λ·c₁ (Algorithm 2).
///
/// Thread safety: `Add` and `Merge` use relaxed atomics, so a meter may be
/// charged concurrently from several workers: no operation count is ever
/// lost, and every charged addend reaches the floating-point sums — but
/// those sums' rounding depends on arrival order, so concurrently-charged
/// micros are NOT bit-reproducible across runs. The parallel paths
/// (sharded executor, batch
/// runner) nevertheless give every shard/query its *own* meter and merge
/// them in deterministic order, which keeps simulated costs bit-identical
/// to the serial path; the atomics protect aggregate meters that callers
/// share across workers. Configuration (`set_budget_micros`,
/// `set_throttle`, `Reset`) is not synchronized and must happen before
/// concurrent use.
class CostMeter {
 public:
  /// Meter using the default cost model and no throttle.
  CostMeter() : CostMeter(&CostModel::Default(), ResourceThrottle{}) {}

  CostMeter(const CostModel* model, ResourceThrottle throttle)
      : model_(model), throttle_(throttle) {}

  /// Copies observe the source's counters atomically (but not as one
  /// snapshot: copying a meter that is being charged concurrently may mix
  /// op counts from different instants).
  CostMeter(const CostMeter& other) { CopyFrom(other); }
  CostMeter& operator=(const CostMeter& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  /// Records `n` occurrences of `op`. Safe to call concurrently.
  void Add(Op op, uint64_t n = 1) {
    counts_[static_cast<int>(op)].fetch_add(n, std::memory_order_relaxed);
    const double base = model_->weight(op) * static_cast<double>(n);
    const ResourceClass rc = OpResourceClass(op);
    const double scaled = base * throttle_.Factor(rc);
    sim_micros_.fetch_add(scaled, std::memory_order_relaxed);
    if (rc == ResourceClass::kIo) {
      io_micros_.fetch_add(scaled, std::memory_order_relaxed);
    } else {
      cpu_micros_.fetch_add(scaled, std::memory_order_relaxed);
    }
  }

  /// Total simulated time in microseconds.
  double sim_micros() const {
    return sim_micros_.load(std::memory_order_relaxed);
  }
  /// Simulated time spent in IO-class operations.
  double io_micros() const {
    return io_micros_.load(std::memory_order_relaxed);
  }
  /// Simulated time spent in CPU-class operations.
  double cpu_micros() const {
    return cpu_micros_.load(std::memory_order_relaxed);
  }
  /// Count of operation `op` recorded so far.
  uint64_t count(Op op) const {
    return counts_[static_cast<int>(op)].load(std::memory_order_relaxed);
  }

  /// Sets a simulated-time budget in microseconds (<=0 disables).
  void set_budget_micros(double budget) { budget_micros_ = budget; }
  double budget_micros() const { return budget_micros_; }
  /// True when a budget is set and has been exceeded.
  bool ExceededBudget() const {
    return budget_micros_ > 0.0 && sim_micros() > budget_micros_;
  }

  /// Folds another meter's counts and time into this one. Safe to call
  /// concurrently on the destination; `other` must be quiescent.
  void Merge(const CostMeter& other) {
    for (int i = 0; i < kNumOps; ++i) {
      counts_[i].fetch_add(other.counts_[i].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    }
    sim_micros_.fetch_add(other.sim_micros(), std::memory_order_relaxed);
    io_micros_.fetch_add(other.io_micros(), std::memory_order_relaxed);
    cpu_micros_.fetch_add(other.cpu_micros(), std::memory_order_relaxed);
  }

  /// Resets counts and simulated time (budget is kept). Not synchronized.
  void Reset() {
    for (int i = 0; i < kNumOps; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    sim_micros_.store(0.0, std::memory_order_relaxed);
    io_micros_.store(0.0, std::memory_order_relaxed);
    cpu_micros_.store(0.0, std::memory_order_relaxed);
  }

  const CostModel* model() const { return model_; }
  const ResourceThrottle& throttle() const { return throttle_; }
  void set_throttle(ResourceThrottle t) { throttle_ = t; }

  /// Multi-line human-readable dump of non-zero counters.
  std::string DebugString() const;

 private:
  void CopyFrom(const CostMeter& other) {
    model_ = other.model_;
    throttle_ = other.throttle_;
    for (int i = 0; i < kNumOps; ++i) {
      counts_[i].store(other.counts_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    }
    sim_micros_.store(other.sim_micros(), std::memory_order_relaxed);
    io_micros_.store(other.io_micros(), std::memory_order_relaxed);
    cpu_micros_.store(other.cpu_micros(), std::memory_order_relaxed);
    budget_micros_ = other.budget_micros_;
  }

  const CostModel* model_ = &CostModel::Default();
  ResourceThrottle throttle_;
  std::array<std::atomic<uint64_t>, kNumOps> counts_{};
  std::atomic<double> sim_micros_{0.0};
  std::atomic<double> io_micros_{0.0};
  std::atomic<double> cpu_micros_{0.0};
  double budget_micros_ = 0.0;
};

}  // namespace dskg

#endif  // DSKG_COMMON_COST_H_
