#ifndef DSKG_COMMON_THREAD_POOL_H_
#define DSKG_COMMON_THREAD_POOL_H_

/// \file thread_pool.h
/// A fixed-size, work-stealing-free thread pool for DSKG's parallel query
/// paths (sharded scans in the relational executor, batch-parallel query
/// execution in the workload runner).
///
/// Design notes:
///
///   * Workers pull from one FIFO queue under a mutex. DSKG's parallel
///     units (one index-leaf shard, one query of a batch) are coarse —
///     thousands to millions of simulated operations each — so queue
///     contention is negligible and the simplicity pays for itself.
///     There is deliberately no work stealing: execution order and result
///     merging stay deterministic because callers collect results by
///     submission index, never by completion order.
///   * `Submit` returns a `std::future`, so exceptions thrown by a task
///     surface at `get()` in the caller, not in the worker.
///   * Shutdown is cooperative: the destructor drains already-queued
///     tasks, then joins all workers.
///
/// The pool is shared-nothing with respect to *task state*: tasks must not
/// share mutable data unless that data is itself thread-safe (see the
/// atomic `CostMeter`). The runner and executor uphold this by giving
/// every shard/query its own meter and output table and merging them in
/// deterministic order afterwards.

#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dskg {

class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains queued tasks, then joins all workers.
  ~ThreadPool() {
    {
      std::unique_lock<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
  /// legally return 0).
  static size_t DefaultThreads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<size_t>(n);
  }

  /// Enqueues `fn` and returns a future for its result. An exception
  /// thrown by `fn` is captured and rethrown by `future::get()`.
  template <typename F>
  std::future<std::invoke_result_t<F>> Submit(F fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs `fn(i)` for every i in [0, n) on the pool and blocks until all
  /// complete. The calling thread also executes tasks while it waits, so
  /// `ParallelFor` may be used from a pool of any size without deadlock.
  /// If any invocation throws, the exception of the smallest such index
  /// is rethrown (deterministic regardless of scheduling).
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(Submit([&fn, i] { fn(i); }));
    }
    HelpAndWait(&futures);
  }

  /// Runs `fn(begin, end)` over [0, n) in contiguous chunks of at most
  /// `grain` indices each, blocking until all chunks complete. One task is
  /// submitted per *chunk*, not per index, so tight per-element loops pay
  /// one std::function dispatch per `grain` elements instead of one per
  /// element. Chunk boundaries depend only on (n, grain) — never on the
  /// worker count — so any per-chunk state a caller derives (RNG streams,
  /// output slabs) is identical at every thread count. Like `ParallelFor`,
  /// the calling thread helps while it waits (nesting-safe) and the
  /// exception of the smallest-index failing chunk is rethrown.
  void ParallelForChunked(size_t n, size_t grain,
                          const std::function<void(size_t, size_t)>& fn) {
    if (n == 0) return;
    if (grain == 0) grain = 1;
    const size_t chunks = (n + grain - 1) / grain;
    std::vector<std::future<void>> futures;
    futures.reserve(chunks);
    for (size_t c = 0; c < chunks; ++c) {
      const size_t begin = c * grain;
      const size_t end = begin + grain < n ? begin + grain : n;
      futures.push_back(Submit([&fn, begin, end] { fn(begin, end); }));
    }
    HelpAndWait(&futures);
  }

 private:
  /// Blocks until every future is ready, executing queued tasks inline on
  /// the calling thread while waiting, then rethrows the exception of the
  /// smallest failing index (deterministic regardless of scheduling).
  void HelpAndWait(std::vector<std::future<void>>* futures) {
    for (std::future<void>& f : *futures) {
      while (f.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!RunOneTask()) {
          f.wait();
          break;
        }
      }
    }
    for (std::future<void>& f : *futures) f.get();
  }

  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and drained
        task = std::move(queue_.front());
        queue_.pop();
      }
      task();
    }
  }

  /// Pops and runs one queued task on the calling thread. Returns false
  /// if the queue was empty.
  bool RunOneTask() {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (queue_.empty()) return false;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    return true;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dskg

#endif  // DSKG_COMMON_THREAD_POOL_H_
