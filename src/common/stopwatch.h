#ifndef DSKG_COMMON_STOPWATCH_H_
#define DSKG_COMMON_STOPWATCH_H_

/// \file stopwatch.h
/// Wall-clock stopwatch. Reported alongside simulated time for context;
/// never used for experiment decisions (see cost.h).

#include <chrono>

namespace dskg {

/// Measures elapsed wall-clock time from construction or last `Restart()`.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall-clock microseconds since start.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

  /// Elapsed wall-clock seconds since start.
  double ElapsedSeconds() const { return ElapsedMicros() * 1e-6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dskg

#endif  // DSKG_COMMON_STOPWATCH_H_
