#ifndef DSKG_COMMON_STR_UTIL_H_
#define DSKG_COMMON_STR_UTIL_H_

/// \file str_util.h
/// Small string helpers shared across modules (parsing, report printing).

#include <string>
#include <string_view>
#include <vector>

namespace dskg {

/// Splits `s` on any character in `delims`, dropping empty pieces.
std::vector<std::string> SplitString(std::string_view s,
                                     std::string_view delims);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`.
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII characters of `s`.
std::string AsciiToLower(std::string_view s);

/// Formats a byte count as a human-readable string ("1.95 GiB").
std::string HumanBytes(uint64_t bytes);

/// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double v, int digits);

}  // namespace dskg

#endif  // DSKG_COMMON_STR_UTIL_H_
