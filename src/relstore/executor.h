#ifndef DSKG_RELSTORE_EXECUTOR_H_
#define DSKG_RELSTORE_EXECUTOR_H_

/// \file executor.h
/// BGP execution over the triple table.
///
/// The executor compiles a basic graph pattern into a left-deep join plan
/// ordered greedily by estimated cardinality, then evaluates it with one
/// of two physical operators per step, chosen by estimated cost:
///
///   * index nested-loop join — one B+-tree probe per outer row; wins at
///     small selectivity;
///   * hash join — scans the pattern's extent once (a partition scan via
///     the POS index) and probes it with outer rows; wins at large
///     selectivity.
///
/// Every join step materializes its intermediate result (the row-store
/// pipeline the paper attributes to MySQL), charging `kMaterializeTuple`
/// per intermediate row — this is the term that makes large-selectivity
/// complex queries expensive in the relational store, reproducing Table 1.
///
/// The pipeline is *slot-compiled*: every variable name is resolved to a
/// small integer (a pattern-local variable index or a `BindingTable`
/// column index) once at plan time, intermediates are flat columnar
/// tables, and hash joins key on packed fixed-size `TermId` tuples — the
/// per-row path performs no heap allocation and no string hashing. The
/// simulated cost charges are unchanged; only the real machine cost of
/// paying them fell.

#include <string>
#include <unordered_set>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "rdf/dictionary.h"
#include "relstore/triple_table.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::relstore {

/// Executes BGP queries against a `TripleTable`.
class Executor {
 public:
  /// Neither pointer is owned; both must outlive the executor.
  Executor(const TripleTable* table, const rdf::Dictionary* dict)
      : table_(table), dict_(dict) {}

  /// Evaluates `query` and returns its projected bindings.
  /// Constants not present in the dictionary yield an empty result.
  /// Returns Cancelled if the meter's cost budget is exhausted.
  Result<sparql::BindingTable> Execute(const sparql::Query& query,
                                       CostMeter* meter) const;

  /// Evaluates `query` starting from an existing binding table `seed`
  /// (e.g. intermediate results migrated from the graph store, already
  /// resident in the temporary table space). The seed's columns join
  /// with the query's variables by name. Projection still follows
  /// `query.select_vars`.
  Result<sparql::BindingTable> ExecuteWithSeed(
      const sparql::Query& query, const sparql::BindingTable& seed,
      CostMeter* meter) const;

  /// Sharded variant of `Execute`: splits the initial pattern's index
  /// range into leaf-aligned shards (`TripleTable::ShardPattern`), runs
  /// the scan *and all remaining joins* of each shard concurrently on
  /// `pool`, and merges the per-shard binding tables and cost meters in
  /// ascending shard order — so the result is deterministic regardless of
  /// scheduling and its rows are the same multiset the serial path
  /// produces. `max_shards` <= 0 means one shard per pool worker.
  ///
  /// Cost accounting is deterministic but not identical to the serial
  /// plan: each shard charges its own `kIndexProbe` descent, and a shard
  /// may pick a different join operator than the serial plan would for
  /// its (smaller) outer relation — the usual price of a sharded plan.
  /// Hash-join build sides, however, are *not* duplicated: the extent
  /// hash table of a join step is built once (single extent scan, single
  /// set of `kHashBuildTuple` charges) and probed read-only by every
  /// shard that chooses a hash join for that step.
  /// Falls back to the serial path when `meter` carries a cost budget
  /// (cooperative cancellation is a serial protocol) or when the range
  /// does not split.
  Result<sparql::BindingTable> ExecuteSharded(const sparql::Query& query,
                                              CostMeter* meter,
                                              ThreadPool* pool,
                                              int max_shards = 0) const;

  /// A dictionary-encoded pattern with plan-time metadata. Public for the
  /// planner helpers in executor.cc and for white-box tests.
  struct EncodedPattern;

  /// Hash tables shared by the shards of one `ExecuteSharded` call: a
  /// join step's extent hash table depends only on the pattern (never on
  /// shard-local rows), so the first shard to choose a hash join builds
  /// it — one extent scan, charged once — and every other shard probes it
  /// read-only. Defined in executor.cc.
  struct SharedJoinState;

 private:
  Result<sparql::BindingTable> Run(const sparql::Query& query,
                                   const sparql::BindingTable* seed,
                                   CostMeter* meter) const;

  /// Greedily joins every unused pattern into `*cur`, charging `meter`.
  /// Shared by the serial path and each shard of the sharded path. When
  /// `shared` is non-null (sharded path), hash-join builds go through it:
  /// built once per pattern, probed by all shards, build cost charged to
  /// the shared entry's meter instead of `meter` (the caller folds those
  /// in deterministically afterwards).
  Status JoinRemaining(std::vector<EncodedPattern>* patterns,
                       sparql::BindingTable* cur,
                       std::unordered_set<std::string>* bound,
                       size_t num_joined, CostMeter* meter,
                       SharedJoinState* shared = nullptr) const;

  const TripleTable* table_;
  const rdf::Dictionary* dict_;
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_EXECUTOR_H_
