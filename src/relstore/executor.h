#ifndef DSKG_RELSTORE_EXECUTOR_H_
#define DSKG_RELSTORE_EXECUTOR_H_

/// \file executor.h
/// BGP execution over the triple table.
///
/// The executor compiles a basic graph pattern into a left-deep join plan
/// ordered greedily by estimated cardinality, then evaluates it with one
/// of two physical operators per step, chosen by estimated cost:
///
///   * index nested-loop join — one B+-tree probe per outer row; wins at
///     small selectivity;
///   * hash join — scans the pattern's extent once (a partition scan via
///     the POS index) and probes it with outer rows; wins at large
///     selectivity.
///
/// Every join step materializes its intermediate result (the row-store
/// pipeline the paper attributes to MySQL), charging `kMaterializeTuple`
/// per intermediate row — this is the term that makes large-selectivity
/// complex queries expensive in the relational store, reproducing Table 1.
///
/// The pipeline is *slot-compiled*: every variable name is resolved to a
/// small integer (a pattern-local variable index or a `BindingTable`
/// column index) once at plan time, intermediates are flat columnar
/// tables, and hash joins key on packed fixed-size `TermId` tuples — the
/// per-row path performs no heap allocation and no string hashing. The
/// simulated cost charges are unchanged; only the real machine cost of
/// paying them fell.

#include <string>
#include <unordered_set>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "rdf/dictionary.h"
#include "relstore/triple_table.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::relstore {

/// Executes BGP queries against a `TripleTable`.
class Executor {
 public:
  /// Neither pointer is owned; both must outlive the executor.
  Executor(const TripleTable* table, const rdf::Dictionary* dict)
      : table_(table), dict_(dict) {}

  /// Evaluates `query` and returns its projected bindings.
  /// Constants not present in the dictionary yield an empty result.
  /// Returns Cancelled if the meter's cost budget is exhausted.
  Result<sparql::BindingTable> Execute(const sparql::Query& query,
                                       CostMeter* meter) const;

  /// Evaluates `query` starting from an existing binding table `seed`
  /// (e.g. intermediate results migrated from the graph store, already
  /// resident in the temporary table space). The seed's columns join
  /// with the query's variables by name. Projection still follows
  /// `query.select_vars`.
  Result<sparql::BindingTable> ExecuteWithSeed(
      const sparql::Query& query, const sparql::BindingTable& seed,
      CostMeter* meter) const;

  /// One triple-pattern position after dictionary encoding. Plan state —
  /// produced once by `Compile`, read by every execution.
  struct Slot {
    bool is_variable = false;
    std::string var;          // when is_variable
    rdf::TermId constant = rdf::kInvalidTermId;  // when !is_variable
    bool missing_constant = false;  // constant not in the dictionary
  };

  /// A fully encoded pattern plus plan-time metadata. Variable names are
  /// resolved once here ("slot compilation"): each distinct variable of
  /// the pattern gets a small integer index, and every per-row operation
  /// works on those indexes — no string map is ever touched while rows
  /// flow. Public for the planner helpers in executor.cc, the compiled
  /// query plans cached by `core::Session`, and white-box tests.
  struct EncodedPattern {
    Slot slots[3];  // subject, predicate, object
    bool used = false;

    /// Slot layout: `var_of_pos[i]` is the index (into `vars`) of the
    /// distinct variable at position i, or -1 for a constant position.
    int var_of_pos[3] = {-1, -1, -1};
    /// Distinct variable names of the pattern, in position order (<= 3).
    std::vector<std::string> vars;

    /// Resolves the pattern's variable positions to distinct-var indexes.
    /// Called once per query by `Compile`.
    void CompileSlots();

    size_t NumVars() const { return vars.size(); }

    bool HasMissingConstant() const {
      return slots[0].missing_constant || slots[1].missing_constant ||
             slots[2].missing_constant;
    }

    /// Pattern with only its constants bound (the scan extent).
    BoundPattern ConstantExtent() const;

    /// Distinct variables of the pattern, in position order.
    const std::vector<std::string>& Vars() const { return vars; }

    /// Checks within-pattern consistency for repeated variables and
    /// writes the value of each distinct variable of triple `t` into
    /// `out[0 .. NumVars())`. No allocation, no string hashing.
    bool ExtractVarValues(const rdf::Triple& t, rdf::TermId* out) const;
  };

  /// A slot-compiled query: dictionary-encoded patterns, the projection,
  /// and the `$parameter` sites left open for execution-time binding.
  /// Compilation happens once (`Compile`); each execution clones the
  /// pattern vector and patches the parameter sites with bound term ids —
  /// no parsing, no dictionary probe, no string hashing on re-execution.
  struct CompiledQuery {
    std::vector<EncodedPattern> patterns;
    std::vector<std::string> out_vars;
    /// A non-parameter constant is absent from the dictionary: the query
    /// can never match (parameters are validated when bound instead).
    bool impossible = false;

    /// One `$param` occurrence: patterns[pattern].slots[pos] takes the
    /// bound value of parameter `param` at execution time.
    struct ParamSite {
      uint32_t pattern;
      uint8_t pos;
      uint32_t param;
    };
    std::vector<ParamSite> param_sites;
    /// Distinct parameter names, in first-appearance order; `param`
    /// indexes above and `param_values` passed at execution align with
    /// this order.
    std::vector<std::string> param_names;
  };

  /// Slot-compiles `query` (see `CompiledQuery`). Never fails: unknown
  /// constants mark the plan `impossible`, parameters become open sites.
  CompiledQuery Compile(const sparql::Query& query) const;

  /// Executes a compiled query. `param_values` supplies one term id per
  /// entry of `cq.param_names` (may be null when the query has no
  /// parameters); a missing or invalid value fails with
  /// FailedPrecondition — never a silently empty table.
  Result<sparql::BindingTable> ExecuteCompiled(
      const CompiledQuery& cq, const rdf::TermId* param_values,
      const sparql::BindingTable* seed, CostMeter* meter) const;

  /// Streaming variant of `ExecuteCompiled`: identical pipeline and cost
  /// charges, but the final projection copy is skipped. The returned
  /// table is the last join intermediate — its columns are a superset of
  /// `cq.out_vars` whenever rows exist. Result cursors project chunk by
  /// chunk from this instead of materializing a second full table.
  Result<sparql::BindingTable> ExecuteCompiledJoined(
      const CompiledQuery& cq, const rdf::TermId* param_values,
      const sparql::BindingTable* seed, CostMeter* meter) const;

  /// Sharded variant of `Execute`: splits the initial pattern's index
  /// range into leaf-aligned shards (`TripleTable::ShardPattern`), runs
  /// the scan *and all remaining joins* of each shard concurrently on
  /// `pool`, and merges the per-shard binding tables and cost meters in
  /// ascending shard order — so the result is deterministic regardless of
  /// scheduling and its rows are the same multiset the serial path
  /// produces. `max_shards` <= 0 means one shard per pool worker.
  ///
  /// Cost accounting is deterministic but not identical to the serial
  /// plan: each shard charges its own `kIndexProbe` descent, and a shard
  /// may pick a different join operator than the serial plan would for
  /// its (smaller) outer relation — the usual price of a sharded plan.
  /// Hash-join build sides, however, are *not* duplicated: the extent
  /// hash table of a join step is built once (single extent scan, single
  /// set of `kHashBuildTuple` charges) and probed read-only by every
  /// shard that chooses a hash join for that step.
  /// Falls back to the serial path when `meter` carries a cost budget
  /// (cooperative cancellation is a serial protocol) or when the range
  /// does not split.
  Result<sparql::BindingTable> ExecuteSharded(const sparql::Query& query,
                                              CostMeter* meter,
                                              ThreadPool* pool,
                                              int max_shards = 0) const;

  /// Hash tables shared by the shards of one `ExecuteSharded` call: a
  /// join step's extent hash table depends only on the pattern (never on
  /// shard-local rows), so the first shard to choose a hash join builds
  /// it — one extent scan, charged once — and every other shard probes it
  /// read-only. Defined in executor.cc.
  struct SharedJoinState;

 private:
  Result<sparql::BindingTable> Run(const sparql::Query& query,
                                   const sparql::BindingTable* seed,
                                   CostMeter* meter) const;

  /// Greedily joins every unused pattern into `*cur`, charging `meter`.
  /// Shared by the serial path and each shard of the sharded path. When
  /// `shared` is non-null (sharded path), hash-join builds go through it:
  /// built once per pattern, probed by all shards, build cost charged to
  /// the shared entry's meter instead of `meter` (the caller folds those
  /// in deterministically afterwards).
  Status JoinRemaining(std::vector<EncodedPattern>* patterns,
                       sparql::BindingTable* cur,
                       std::unordered_set<std::string>* bound,
                       size_t num_joined, CostMeter* meter,
                       SharedJoinState* shared = nullptr) const;

  const TripleTable* table_;
  const rdf::Dictionary* dict_;
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_EXECUTOR_H_
