#ifndef DSKG_RELSTORE_VIEWS_H_
#define DSKG_RELSTORE_VIEWS_H_

/// \file views.h
/// Materialized views over BGP subqueries — the substrate of the paper's
/// RDB-views baseline (§6.2), which materializes the most frequent complex
/// subqueries of the historical workload instead of shipping partitions to
/// a graph store.
///
/// A view generalizes its defining subquery: constants in subject/object
/// position are replaced by fresh variables before materialization, so one
/// view answers every *mutation* of a query template (the paper's
/// workloads are templates plus constant mutations). At use time the
/// original constants become filters over the view's columns.
///
/// Views are keyed by a canonical BGP signature: variables and generalized
/// constants are renamed in first-occurrence order, predicates are kept.
/// Two BGPs with the same join structure over the same predicates share a
/// signature.
///
/// Snapshot reads (online mode): views are held by pointer; under
/// `SetDeferredReclaim(true)` a dropped or invalidated view is retired —
/// kept alive until `CollectRetired` after the epoch drain — instead of
/// destroyed, so a `MakeSnapshot` captured earlier keeps serving it.
/// Readers install a snapshot with `ReadScope`; without one, reads serve
/// the live catalog.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "relstore/executor.h"
#include "sparql/ast.h"
#include "sparql/bindings.h"

namespace dskg::relstore {

/// Canonical signature of a BGP: structure + predicates, ignoring variable
/// names and subject/object constant values. Used to match queries to
/// views (and, in the workload generators' tests, to group mutations).
std::string BgpSignature(const std::vector<sparql::TriplePattern>& patterns);

/// One materialized view.
struct MaterializedView {
  /// Canonical signature of the generalized defining BGP.
  std::string signature;
  /// The generalized defining query (all variables projected).
  sparql::Query definition;
  /// Materialized rows; columns are the canonical variable names.
  sparql::BindingTable data;
};

/// Creates, stores and matches materialized views under a row budget.
class MaterializedViewManager {
 public:
  /// \param executor    relational executor used to materialize views
  /// \param dict        shared term dictionary (for constant filters)
  /// \param budget_rows total rows all views may occupy (0 = unlimited);
  ///                    the benchmark harness sets this equal to the graph
  ///                    store's triple budget for a fair comparison.
  MaterializedViewManager(const Executor* executor,
                          const rdf::Dictionary* dict, uint64_t budget_rows)
      : executor_(executor), dict_(dict), budget_rows_(budget_rows) {}

  /// Materializes a view for the generalization of `subquery`.
  /// Charges the defining query's execution plus one `kTempTableTuple` per
  /// materialized row to `meter` (view building is offline work).
  /// Returns AlreadyExists if an equivalent view exists and
  /// CapacityExceeded (after discarding the result) if it does not fit.
  Status CreateView(const sparql::Query& subquery, CostMeter* meter);

  /// Drops the view with `signature`; NotFound if absent.
  Status DropView(const std::string& signature);

  /// Drops every view whose definition references any predicate in
  /// `predicates` (dictionary ids). The online applier calls this after a
  /// batch mutates those partitions — a stale view would keep serving
  /// pre-batch rows. The tuner rebuilds dropped views at its next window.
  /// Returns the number of views dropped.
  size_t InvalidatePredicates(
      const std::unordered_set<rdf::TermId>& predicates);

  /// Drops all views.
  void Clear();

  /// Result of matching a query against the view catalog.
  struct Answer {
    /// Bindings of the query's own variables obtained from the view.
    sparql::BindingTable bindings;
  };

  /// Attempts to answer the BGP `patterns` (e.g. a complex subquery) from
  /// a view. On success returns bindings for the query's variables, with
  /// the query's constants applied as filters. Charges one `kViewLookup`
  /// plus one `kViewScanTuple` per row scanned. Returns nullopt when no
  /// view matches.
  std::optional<Answer> TryAnswer(
      const std::vector<sparql::TriplePattern>& patterns,
      CostMeter* meter) const;

  /// True if a view with the signature of `patterns` exists.
  bool HasViewFor(const std::vector<sparql::TriplePattern>& patterns) const;

  uint64_t used_rows() const;
  uint64_t budget_rows() const { return budget_rows_; }
  size_t num_views() const;

  /// Monotone version of the catalog: bumped by every successful
  /// CreateView/DropView/InvalidatePredicates/Clear that changes it.
  /// Prepared query plans record it (folded into `DualStore::
  /// plan_epoch()`) and re-validate when it moves — a plan that decided
  /// its route against an older catalog must not keep serving it.
  uint64_t catalog_version() const;

  /// Signatures of all views, ascending (deterministic).
  std::vector<std::string> Signatures() const;

  /// True if a view with exactly `signature` exists.
  bool HasSignature(const std::string& signature) const {
    return FindView(signature) != nullptr;
  }

  /// The generalized defining query of the view with `signature`, or
  /// nullptr if absent (used to mirror catalogs between stores).
  const sparql::Query* DefinitionOf(const std::string& signature) const {
    const MaterializedView* v = FindView(signature);
    return v == nullptr ? nullptr : &v->definition;
  }

  // ---- snapshots (the online store's concurrent read path) --------------

  /// An immutable view of the catalog (by pointer — valid until
  /// `CollectRetired` destroys retired views). Capture at a
  /// write-quiescent point; read through `ReadScope`.
  struct Snapshot {
    const MaterializedViewManager* owner = nullptr;
    /// Views sorted by signature (map order).
    std::vector<std::pair<std::string, const MaterializedView*>> views;
    uint64_t used_rows = 0;
    uint64_t catalog_version = 0;
  };

  /// Captures the current catalog. Quiescent only.
  Snapshot MakeSnapshot() const;

  /// Installs `snap` as this thread's read source for the owning manager
  /// (nests; restores the previous source on destruction). A null
  /// snapshot, or one owned by another manager, leaves reads live.
  class ReadScope {
   public:
    explicit ReadScope(const Snapshot* snap) : prev_(tls_snapshot_) {
      tls_snapshot_ = snap;
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;
    ~ReadScope() { tls_snapshot_ = prev_; }

   private:
    const Snapshot* prev_;
  };

  // ---- deferred reclamation (the online store's write path) -------------

  /// Switches between immediate view destruction (offline, default) and
  /// retire-until-drained (online). Toggle only while quiescent.
  void SetDeferredReclaim(bool on) { deferred_ = on; }

  /// Destroys views retired by drops/invalidations. Call after the epoch
  /// protocol proves no reader still holds a snapshot referencing them.
  /// Returns the number destroyed.
  size_t CollectRetired() {
    const size_t n = retired_.size();
    retired_.clear();
    return n;
  }

 private:
  /// The view to read for `signature`: the installed snapshot's (binary
  /// search), or the live catalog's.
  const MaterializedView* FindView(const std::string& signature) const;

  /// This thread's installed snapshot if it belongs to this manager.
  const Snapshot* CurrentSnapshot() const {
    const Snapshot* s = tls_snapshot_;
    return (s != nullptr && s->owner == this) ? s : nullptr;
  }

  /// Removes `it`'s view from the catalog: destroyed offline, retired
  /// until the drain under deferred reclamation.
  std::map<std::string, std::unique_ptr<MaterializedView>>::iterator
  RemoveView(std::map<std::string, std::unique_ptr<MaterializedView>>::iterator
                 it);

  const Executor* executor_;
  const rdf::Dictionary* dict_;
  uint64_t budget_rows_;
  uint64_t used_rows_ = 0;
  /// Atomic: bumped by the applier while prepared sessions poll it.
  std::atomic<uint64_t> catalog_version_{0};
  // Ordered map => deterministic iteration.
  std::map<std::string, std::unique_ptr<MaterializedView>> views_;
  bool deferred_ = false;
  std::vector<std::unique_ptr<MaterializedView>> retired_;

  inline static thread_local const Snapshot* tls_snapshot_ = nullptr;
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_VIEWS_H_
