#include "relstore/triple_table.h"

#include <algorithm>

#include "common/thread_pool.h"

namespace dskg::relstore {

using rdf::TermId;
using rdf::Triple;

TripleTable::Key TripleTable::MakeKey(Order order, const Triple& t) {
  switch (order) {
    case Order::kSPO: return {t.subject, t.predicate, t.object};
    case Order::kPOS: return {t.predicate, t.object, t.subject};
    case Order::kOSP: return {t.object, t.subject, t.predicate};
  }
  return {};
}

Triple TripleTable::KeyToTriple(Order order, const Key& k) {
  switch (order) {
    case Order::kSPO: return {k[0], k[1], k[2]};
    case Order::kPOS: return {k[2], k[0], k[1]};
    case Order::kOSP: return {k[1], k[2], k[0]};
  }
  return {};
}

bool TripleTable::Insert(const Triple& t, CostMeter* meter) {
  SubShard& sh = shards_[static_cast<size_t>(ShardOf(t.predicate))];
  if (!sh.spo.Insert(MakeKey(Order::kSPO, t))) return false;  // duplicate
  sh.pos.Insert(MakeKey(Order::kPOS, t));
  sh.osp.Insert(MakeKey(Order::kOSP, t));
  ++sh.num_rows;
  MutableStats& st = sh.stats[t.predicate];
  st.num_triples += 1;
  CountUp(&st.subjects, t.subject);
  CountUp(&st.objects, t.object);
  CountUp(&sh.all_subjects, t.subject);
  CountUp(&sh.all_objects, t.object);
  if (meter != nullptr) meter->Add(Op::kInsertTuple);
  return true;
}

bool TripleTable::RemoveTriple(const Triple& t, CostMeter* meter) {
  SubShard& sh = shards_[static_cast<size_t>(ShardOf(t.predicate))];
  if (!sh.spo.Erase(MakeKey(Order::kSPO, t))) return false;  // not stored
  sh.pos.Erase(MakeKey(Order::kPOS, t));
  sh.osp.Erase(MakeKey(Order::kOSP, t));
  --sh.num_rows;
  auto it = sh.stats.find(t.predicate);
  MutableStats& st = it->second;
  st.num_triples -= 1;
  CountDown(&st.subjects, t.subject);
  CountDown(&st.objects, t.object);
  if (st.num_triples == 0) sh.stats.erase(it);
  CountDown(&sh.all_subjects, t.subject);
  CountDown(&sh.all_objects, t.object);
  if (meter != nullptr) meter->Add(Op::kRemoveTuple);
  return true;
}

void TripleTable::BulkLoad(const std::vector<Triple>& triples,
                           CostMeter* meter, ThreadPool* pool) {
  if (size() != 0) {
    // Incremental top-up of a live table: per-key inserts.
    Reserve(size() + triples.size());
    for (const Triple& t : triples) Insert(t, meter);
    return;
  }
  // Fresh load: sort/unique once, then build each permutation of each
  // sub-shard bottom-up at full leaf occupancy (`BPlusTree::BulkBuild`) —
  // ~half the slab bytes and none of the split churn of one-by-one
  // insertion. Charges and statistics are identical to the incremental
  // path: one `kInsertTuple` and one stats update per *stored* (unique)
  // triple; the cost meter and the occurrence counters are
  // order-independent. Duplicates collapse globally, which equals
  // per-shard collapse (duplicates share a predicate and thus a shard).
  std::vector<Key> keys(triples.size());
  const auto encode_keys = [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      keys[i] = MakeKey(Order::kSPO, triples[i]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelForChunked(triples.size(), 65536, encode_keys);
  } else {
    encode_keys(0, triples.size());
  }
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  const size_t n_shards = shards_.size();
  // Partition the sorted key set by owning sub-shard (order-preserving,
  // so each sub-shard's subset is itself sorted). One shard: pass-through.
  std::vector<std::vector<Key>> per_shard(n_shards);
  if (n_shards == 1) {
    per_shard[0] = keys;
  } else {
    for (const Key& k : keys) {
      per_shard[static_cast<size_t>(ShardOf(k[1]))].push_back(k);
    }
  }
  // Four independent jobs per sub-shard — the SPO build, the statistics +
  // charge pass, and the POS/OSP permute-sort-builds. Each writes a
  // disjoint part of its own sub-shard (distinct trees vs. the stats
  // maps), each shard's stats pass replays the serial loop's exact
  // per-shard insertion subsequence, and the shared meter accumulates in
  // exact integer picoseconds, so the resulting table and charges are
  // bit-identical to the serial job order below.
  const auto run_job = [&](size_t job) {
    const size_t s = job / 4;
    SubShard& sh = shards_[s];
    switch (job % 4) {
      case 0:
        sh.spo.BulkBuild(per_shard[s]);
        break;
      case 1:
        for (const Key& k : per_shard[s]) {
          const Triple t = KeyToTriple(Order::kSPO, k);
          ++sh.num_rows;
          MutableStats& st = sh.stats[t.predicate];
          st.num_triples += 1;
          CountUp(&st.subjects, t.subject);
          CountUp(&st.objects, t.object);
          CountUp(&sh.all_subjects, t.subject);
          CountUp(&sh.all_objects, t.object);
          if (meter != nullptr) meter->Add(Op::kInsertTuple);
        }
        break;
      case 2:
      case 3: {
        const Order order = job % 4 == 2 ? Order::kPOS : Order::kOSP;
        std::vector<Key> permuted;
        permuted.reserve(per_shard[s].size());
        for (const Key& k : per_shard[s]) {
          permuted.push_back(MakeKey(order, KeyToTriple(Order::kSPO, k)));
        }
        std::sort(permuted.begin(), permuted.end());
        (order == Order::kPOS ? sh.pos : sh.osp).BulkBuild(permuted);
        break;
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(n_shards * 4, run_job);
  } else {
    for (size_t job = 0; job < n_shards * 4; ++job) run_job(job);
  }
}

bool TripleTable::Contains(const Triple& t, CostMeter* meter) const {
  if (meter != nullptr) meter->Add(Op::kIndexProbe);
  const Snapshot* snap = CurrentSnapshot();
  const int sub = ShardOf(t.predicate);
  return shards_[static_cast<size_t>(sub)].spo.ContainsAt(
      RootFor(snap, sub, Order::kSPO), MakeKey(Order::kSPO, t));
}

std::optional<std::pair<TripleTable::Order, int>> TripleTable::ChooseIndex(
    const BoundPattern& p) {
  const bool s = p.subject.has_value();
  const bool pr = p.predicate.has_value();
  const bool o = p.object.has_value();
  if (s && pr && o) return {{Order::kSPO, 3}};
  if (s && pr) return {{Order::kSPO, 2}};
  if (pr && o) return {{Order::kPOS, 2}};
  if (o && s) return {{Order::kOSP, 2}};
  if (s) return {{Order::kSPO, 1}};
  if (pr) return {{Order::kPOS, 1}};
  if (o) return {{Order::kOSP, 1}};
  return std::nullopt;
}

Status TripleTable::RangeScan(
    int sub_shard, Order order, const Key& lo, int prefix_len, const Key* end,
    bool charge_probe, Op tuple_op, const BoundPattern& pattern,
    CostMeter* meter, const std::function<bool(const Triple&)>& fn,
    bool* stopped) const {
  if (charge_probe) meter->Add(Op::kIndexProbe);
  const Snapshot* snap = CurrentSnapshot();
  const BPlusTree<Key>& idx =
      shards_[static_cast<size_t>(sub_shard)].Index(order);
  const uint32_t root = RootFor(snap, sub_shard, order);
  for (auto it = idx.LowerBoundAt(root, lo); !it.AtEnd(); ++it) {
    const Key& k = *it;
    if (end != nullptr && !(k < *end)) break;  // shard boundary
    // Stop once the bound prefix no longer matches (end of the range).
    bool in_range = true;
    for (int i = 0; i < prefix_len; ++i) {
      if (k[i] != lo[i]) {
        in_range = false;
        break;
      }
    }
    if (!in_range) break;
    meter->Add(tuple_op);
    if (meter->ExceededBudget()) {
      return Status::Cancelled("index scan exceeded cost budget");
    }
    const Triple t = KeyToTriple(order, k);
    if (!Matches(pattern, t)) continue;  // residual predicate
    if (!fn(t)) {
      if (stopped != nullptr) *stopped = true;
      break;
    }
  }
  return Status::OK();
}

Status TripleTable::ScanPattern(
    const BoundPattern& pattern, CostMeter* meter,
    const std::function<bool(const Triple&)>& fn) const {
  const auto choice = ChooseIndex(pattern);
  if (!choice.has_value()) {
    // Nothing bound: full table scan over the SPO indexes in sub-shard
    // order (clustered order within each); no descent is charged, each
    // tuple is a sequential read.
    bool stopped = false;
    for (int s = 0; s < num_shards() && !stopped; ++s) {
      DSKG_RETURN_NOT_OK(RangeScan(s, Order::kSPO, Key{0, 0, 0},
                                   /*prefix_len=*/0, /*end=*/nullptr,
                                   /*charge_probe=*/false, Op::kSeqScanTuple,
                                   pattern, meter, fn, &stopped));
    }
    return Status::OK();
  }
  const auto [order, prefix_len] = *choice;
  Key lo{0, 0, 0};
  const Triple bound{pattern.subject.value_or(0),
                     pattern.predicate.value_or(0),
                     pattern.object.value_or(0)};
  const Key full = MakeKey(order, bound);
  for (int i = 0; i < prefix_len; ++i) lo[i] = full[i];
  if (pattern.predicate.has_value()) {
    // Bound predicate: every matching row lives in one sub-shard.
    return RangeScan(ShardOf(*pattern.predicate), order, lo, prefix_len,
                     /*end=*/nullptr, /*charge_probe=*/true,
                     Op::kIndexScanTuple, pattern, meter, fn, nullptr);
  }
  // Predicate unbound: the matching rows may live in any sub-shard; scan
  // each in order (one descent per sub-shard).
  bool stopped = false;
  for (int s = 0; s < num_shards() && !stopped; ++s) {
    DSKG_RETURN_NOT_OK(RangeScan(s, order, lo, prefix_len, /*end=*/nullptr,
                                 /*charge_probe=*/true, Op::kIndexScanTuple,
                                 pattern, meter, fn, &stopped));
  }
  return Status::OK();
}

std::vector<TripleTable::PatternShard> TripleTable::ShardPattern(
    const BoundPattern& pattern, int max_shards) const {
  if (max_shards < 1) max_shards = 1;
  const auto choice = ChooseIndex(pattern);
  Order order = Order::kSPO;
  int prefix_len = 0;
  Key lo{0, 0, 0};
  bool full_scan = true;
  if (choice.has_value()) {
    order = choice->first;
    prefix_len = choice->second;
    const Triple bound{pattern.subject.value_or(0),
                       pattern.predicate.value_or(0),
                       pattern.object.value_or(0)};
    const Key full = MakeKey(order, bound);
    for (int i = 0; i < prefix_len; ++i) lo[i] = full[i];
    full_scan = false;
  }
  const auto within = [&](const Key& k) {
    for (int i = 0; i < prefix_len; ++i) {
      if (k[i] != lo[i]) return false;
    }
    return true;
  };
  const Snapshot* snap = CurrentSnapshot();
  // Bound predicate: one sub-shard holds the whole range and gets the
  // full shard budget. Otherwise split the budget evenly across
  // sub-shards; vector order (ascending sub-shard, then key) reproduces
  // the serial scan order.
  std::vector<int> subs;
  int budget = max_shards;
  if (pattern.predicate.has_value()) {
    subs.push_back(ShardOf(*pattern.predicate));
  } else {
    for (int s = 0; s < num_shards(); ++s) subs.push_back(s);
    budget = std::max(1, max_shards / num_shards());
  }
  std::vector<PatternShard> shards;
  for (const int sub : subs) {
    const std::vector<Key> starts =
        shards_[static_cast<size_t>(sub)].Index(order).ShardStartsAt(
            RootFor(snap, sub, order), lo, budget, within);
    for (size_t i = 0; i < starts.size(); ++i) {
      PatternShard s;
      s.begin = starts[i];
      if (i + 1 < starts.size()) {
        s.has_end = true;
        s.end = starts[i + 1];
      }
      s.order = static_cast<int>(order);
      s.prefix_len = prefix_len;
      s.full_scan = full_scan;
      s.sub_shard = sub;
      shards.push_back(s);
    }
  }
  return shards;
}

Status TripleTable::ScanShard(
    const PatternShard& shard, const BoundPattern& pattern, CostMeter* meter,
    const std::function<bool(const Triple&)>& fn) const {
  // `shard.begin` carries the same bound prefix as the original scan's
  // lower bound, so the prefix check against it is the range-end check.
  // The serial full-table scan charges no descent; mirror that here.
  return RangeScan(shard.sub_shard, static_cast<Order>(shard.order),
                   shard.begin, shard.prefix_len,
                   shard.has_end ? &shard.end : nullptr,
                   /*charge_probe=*/!shard.full_scan,
                   shard.full_scan ? Op::kSeqScanTuple : Op::kIndexScanTuple,
                   pattern, meter, fn, nullptr);
}

uint64_t TripleTable::EstimateMatches(const BoundPattern& p) const {
  if (p.predicate.has_value()) {
    const PredicateTableStats st = StatsOf(*p.predicate);
    if (st.num_triples == 0) return 0;
    double est = static_cast<double>(st.num_triples);
    if (p.subject.has_value()) {
      est /= std::max<uint64_t>(1, st.num_distinct_subjects);
    }
    if (p.object.has_value()) {
      est /= std::max<uint64_t>(1, st.num_distinct_objects);
    }
    return static_cast<uint64_t>(std::max(1.0, est));
  }
  // Variable predicate: assume uniformity across the whole table.
  double est = static_cast<double>(size());
  if (p.subject.has_value()) est /= std::max<uint64_t>(1, SubjectCount());
  if (p.object.has_value()) est /= std::max<uint64_t>(1, ObjectCount());
  return static_cast<uint64_t>(std::max(1.0, est));
}

PredicateTableStats TripleTable::StatsOf(TermId predicate) const {
  if (const Snapshot* snap = CurrentSnapshot()) {
    const auto it = std::lower_bound(
        snap->stats.begin(), snap->stats.end(), predicate,
        [](const auto& entry, TermId p) { return entry.first < p; });
    if (it == snap->stats.end() || it->first != predicate) return {};
    return it->second;
  }
  const SubShard& sh = shards_[static_cast<size_t>(ShardOf(predicate))];
  const auto it = sh.stats.find(predicate);
  if (it == sh.stats.end()) return {};
  return {it->second.num_triples,
          static_cast<uint64_t>(it->second.subjects.size()),
          static_cast<uint64_t>(it->second.objects.size())};
}

std::vector<TermId> TripleTable::Predicates() const {
  std::vector<TermId> out;
  if (const Snapshot* snap = CurrentSnapshot()) {
    out.reserve(snap->stats.size());
    for (const auto& [p, _] : snap->stats) out.push_back(p);
    return out;
  }
  for (const SubShard& sh : shards_) {
    for (const auto& [p, _] : sh.stats) out.push_back(p);
  }
  return out;
}

uint64_t TripleTable::size() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->num_rows;
  uint64_t total = 0;
  for (const SubShard& sh : shards_) total += sh.num_rows;
  return total;
}

uint64_t TripleTable::num_predicates() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->stats.size();
  uint64_t total = 0;
  for (const SubShard& sh : shards_) total += sh.stats.size();
  return total;
}

uint64_t TripleTable::SubjectCount() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->subject_count;
  uint64_t total = 0;
  for (const SubShard& sh : shards_) total += sh.all_subjects.size();
  return total;
}

uint64_t TripleTable::ObjectCount() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->object_count;
  uint64_t total = 0;
  for (const SubShard& sh : shards_) total += sh.all_objects.size();
  return total;
}

TripleTable::Snapshot TripleTable::MakeSnapshot() const {
  Snapshot snap;
  snap.owner = this;
  snap.shards.reserve(shards_.size());
  for (const SubShard& sh : shards_) {
    snap.shards.push_back(
        {sh.spo.root(), sh.pos.root(), sh.osp.root()});
    snap.num_rows += sh.num_rows;
    snap.subject_count += sh.all_subjects.size();
    snap.object_count += sh.all_objects.size();
    for (const auto& [p, st] : sh.stats) {
      snap.stats.emplace_back(
          p, PredicateTableStats{st.num_triples,
                                 static_cast<uint64_t>(st.subjects.size()),
                                 static_cast<uint64_t>(st.objects.size())});
    }
  }
  std::sort(snap.stats.begin(), snap.stats.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return snap;
}

// ---- persistence ------------------------------------------------------------

namespace {

/// Writes an occurrence-count map sorted by term id (deterministic bytes
/// for a given table state).
void PutCounts(const std::unordered_map<TermId, uint64_t>& counts,
               std::string* out) {
  std::vector<std::pair<TermId, uint64_t>> sorted(counts.begin(),
                                                  counts.end());
  std::sort(sorted.begin(), sorted.end());
  PutU64(out, sorted.size());
  for (const auto& [id, n] : sorted) {
    PutU64(out, id);
    PutU64(out, n);
  }
}

Status ReadCounts(ByteReader* in, std::unordered_map<TermId, uint64_t>* out) {
  uint64_t n = 0;
  DSKG_RETURN_NOT_OK(in->ReadU64(&n));
  if (n * 16 > in->remaining()) {
    return Status::IoError("table image: count-map size overflow");
  }
  out->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id = 0, count = 0;
    DSKG_RETURN_NOT_OK(in->ReadU64(&id));
    DSKG_RETURN_NOT_OK(in->ReadU64(&count));
    (*out)[id] = count;
  }
  return Status::OK();
}

}  // namespace

Status TripleTable::SerializeTo(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(shards_.size()));
  for (const SubShard& sh : shards_) {
    DSKG_RETURN_NOT_OK(sh.spo.SerializeTo(out));
    DSKG_RETURN_NOT_OK(sh.pos.SerializeTo(out));
    DSKG_RETURN_NOT_OK(sh.osp.SerializeTo(out));
    PutU64(out, sh.num_rows);
    std::vector<TermId> preds;
    preds.reserve(sh.stats.size());
    for (const auto& [p, st] : sh.stats) preds.push_back(p);
    std::sort(preds.begin(), preds.end());
    PutU64(out, preds.size());
    for (const TermId p : preds) {
      const MutableStats& st = sh.stats.at(p);
      PutU64(out, p);
      PutU64(out, st.num_triples);
      PutCounts(st.subjects, out);
      PutCounts(st.objects, out);
    }
    PutCounts(sh.all_subjects, out);
    PutCounts(sh.all_objects, out);
  }
  return Status::OK();
}

Status TripleTable::DeserializeFrom(ByteReader* in) {
  uint32_t num_shards = 0;
  DSKG_RETURN_NOT_OK(in->ReadU32(&num_shards));
  if (num_shards != shards_.size()) {
    return Status::InvalidArgument(
        "table image has " + std::to_string(num_shards) +
        " sub-shards, store configured for " +
        std::to_string(shards_.size()));
  }
  for (SubShard& sh : shards_) {
    if (sh.num_rows != 0 || !sh.spo.empty()) {
      return Status::FailedPrecondition("table restore target is not empty");
    }
    DSKG_RETURN_NOT_OK(sh.spo.DeserializeFrom(in));
    DSKG_RETURN_NOT_OK(sh.pos.DeserializeFrom(in));
    DSKG_RETURN_NOT_OK(sh.osp.DeserializeFrom(in));
    DSKG_RETURN_NOT_OK(in->ReadU64(&sh.num_rows));
    uint64_t num_preds = 0;
    DSKG_RETURN_NOT_OK(in->ReadU64(&num_preds));
    if (num_preds * 16 > in->remaining()) {
      return Status::IoError("table image: predicate count overflow");
    }
    sh.stats.reserve(num_preds);
    for (uint64_t i = 0; i < num_preds; ++i) {
      uint64_t pred = 0;
      DSKG_RETURN_NOT_OK(in->ReadU64(&pred));
      MutableStats& st = sh.stats[pred];
      DSKG_RETURN_NOT_OK(in->ReadU64(&st.num_triples));
      DSKG_RETURN_NOT_OK(ReadCounts(in, &st.subjects));
      DSKG_RETURN_NOT_OK(ReadCounts(in, &st.objects));
    }
    DSKG_RETURN_NOT_OK(ReadCounts(in, &sh.all_subjects));
    DSKG_RETURN_NOT_OK(ReadCounts(in, &sh.all_objects));
  }
  return Status::OK();
}

}  // namespace dskg::relstore
