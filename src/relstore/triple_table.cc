#include "relstore/triple_table.h"

#include <algorithm>

namespace dskg::relstore {

using rdf::TermId;
using rdf::Triple;

TripleTable::Key TripleTable::MakeKey(Order order, const Triple& t) {
  switch (order) {
    case Order::kSPO: return {t.subject, t.predicate, t.object};
    case Order::kPOS: return {t.predicate, t.object, t.subject};
    case Order::kOSP: return {t.object, t.subject, t.predicate};
  }
  return {};
}

Triple TripleTable::KeyToTriple(Order order, const Key& k) {
  switch (order) {
    case Order::kSPO: return {k[0], k[1], k[2]};
    case Order::kPOS: return {k[2], k[0], k[1]};
    case Order::kOSP: return {k[1], k[2], k[0]};
  }
  return {};
}

bool TripleTable::Insert(const Triple& t, CostMeter* meter) {
  if (!spo_.Insert(MakeKey(Order::kSPO, t))) return false;  // duplicate
  pos_.Insert(MakeKey(Order::kPOS, t));
  osp_.Insert(MakeKey(Order::kOSP, t));
  ++num_rows_;
  MutableStats& st = stats_[t.predicate];
  st.num_triples += 1;
  CountUp(&st.subjects, t.subject);
  CountUp(&st.objects, t.object);
  CountUp(&all_subjects_, t.subject);
  CountUp(&all_objects_, t.object);
  if (meter != nullptr) meter->Add(Op::kInsertTuple);
  return true;
}

bool TripleTable::RemoveTriple(const Triple& t, CostMeter* meter) {
  if (!spo_.Erase(MakeKey(Order::kSPO, t))) return false;  // not stored
  pos_.Erase(MakeKey(Order::kPOS, t));
  osp_.Erase(MakeKey(Order::kOSP, t));
  --num_rows_;
  auto it = stats_.find(t.predicate);
  MutableStats& st = it->second;
  st.num_triples -= 1;
  CountDown(&st.subjects, t.subject);
  CountDown(&st.objects, t.object);
  if (st.num_triples == 0) stats_.erase(it);
  CountDown(&all_subjects_, t.subject);
  CountDown(&all_objects_, t.object);
  if (meter != nullptr) meter->Add(Op::kRemoveTuple);
  return true;
}

void TripleTable::BulkLoad(const std::vector<Triple>& triples,
                           CostMeter* meter) {
  if (num_rows_ != 0) {
    // Incremental top-up of a live table: per-key inserts.
    Reserve(num_rows_ + triples.size());
    for (const Triple& t : triples) Insert(t, meter);
    return;
  }
  // Fresh load: sort/unique once, then build each permutation bottom-up
  // at full leaf occupancy (`BPlusTree::BulkBuild`) — ~half the slab
  // bytes and none of the split churn of one-by-one insertion. Charges
  // and statistics are identical to the incremental path: one
  // `kInsertTuple` and one stats update per *stored* (unique) triple;
  // the cost meter and the occurrence counters are order-independent.
  std::vector<Key> keys;
  keys.reserve(triples.size());
  for (const Triple& t : triples) keys.push_back(MakeKey(Order::kSPO, t));
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  spo_.BulkBuild(keys);
  for (const Key& k : keys) {
    const Triple t = KeyToTriple(Order::kSPO, k);
    ++num_rows_;
    MutableStats& st = stats_[t.predicate];
    st.num_triples += 1;
    CountUp(&st.subjects, t.subject);
    CountUp(&st.objects, t.object);
    CountUp(&all_subjects_, t.subject);
    CountUp(&all_objects_, t.object);
    if (meter != nullptr) meter->Add(Op::kInsertTuple);
  }
  // The other permutations of the same (already unique) triple set.
  std::vector<Key> permuted;
  permuted.reserve(keys.size());
  for (const Key& k : keys) {
    permuted.push_back(MakeKey(Order::kPOS, KeyToTriple(Order::kSPO, k)));
  }
  std::sort(permuted.begin(), permuted.end());
  pos_.BulkBuild(permuted);
  permuted.clear();
  for (const Key& k : keys) {
    permuted.push_back(MakeKey(Order::kOSP, KeyToTriple(Order::kSPO, k)));
  }
  std::sort(permuted.begin(), permuted.end());
  osp_.BulkBuild(permuted);
}

bool TripleTable::Contains(const Triple& t, CostMeter* meter) const {
  if (meter != nullptr) meter->Add(Op::kIndexProbe);
  return spo_.Contains(MakeKey(Order::kSPO, t));
}

std::optional<std::pair<TripleTable::Order, int>> TripleTable::ChooseIndex(
    const BoundPattern& p) {
  const bool s = p.subject.has_value();
  const bool pr = p.predicate.has_value();
  const bool o = p.object.has_value();
  if (s && pr && o) return {{Order::kSPO, 3}};
  if (s && pr) return {{Order::kSPO, 2}};
  if (pr && o) return {{Order::kPOS, 2}};
  if (o && s) return {{Order::kOSP, 2}};
  if (s) return {{Order::kSPO, 1}};
  if (pr) return {{Order::kPOS, 1}};
  if (o) return {{Order::kOSP, 1}};
  return std::nullopt;
}

Status TripleTable::RangeScan(
    Order order, const Key& lo, int prefix_len, const Key* end,
    bool charge_probe, Op tuple_op, const BoundPattern& pattern,
    CostMeter* meter, const std::function<bool(const Triple&)>& fn) const {
  if (charge_probe) meter->Add(Op::kIndexProbe);
  for (auto it = IndexFor(order)->LowerBound(lo); !it.AtEnd(); ++it) {
    const Key& k = *it;
    if (end != nullptr && !(k < *end)) break;  // shard boundary
    // Stop once the bound prefix no longer matches (end of the range).
    bool in_range = true;
    for (int i = 0; i < prefix_len; ++i) {
      if (k[i] != lo[i]) {
        in_range = false;
        break;
      }
    }
    if (!in_range) break;
    meter->Add(tuple_op);
    if (meter->ExceededBudget()) {
      return Status::Cancelled("index scan exceeded cost budget");
    }
    const Triple t = KeyToTriple(order, k);
    if (!Matches(pattern, t)) continue;  // residual predicate
    if (!fn(t)) break;
  }
  return Status::OK();
}

Status TripleTable::ScanPattern(
    const BoundPattern& pattern, CostMeter* meter,
    const std::function<bool(const Triple&)>& fn) const {
  const auto choice = ChooseIndex(pattern);
  if (!choice.has_value()) {
    // Nothing bound: full table scan over the SPO index (clustered
    // order); no descent is charged, each tuple is a sequential read.
    return RangeScan(Order::kSPO, Key{0, 0, 0}, /*prefix_len=*/0,
                     /*end=*/nullptr, /*charge_probe=*/false,
                     Op::kSeqScanTuple, pattern, meter, fn);
  }
  const auto [order, prefix_len] = *choice;
  Key lo{0, 0, 0};
  const Triple bound{pattern.subject.value_or(0),
                     pattern.predicate.value_or(0),
                     pattern.object.value_or(0)};
  const Key full = MakeKey(order, bound);
  for (int i = 0; i < prefix_len; ++i) lo[i] = full[i];
  return RangeScan(order, lo, prefix_len, /*end=*/nullptr,
                   /*charge_probe=*/true, Op::kIndexScanTuple, pattern,
                   meter, fn);
}

std::vector<TripleTable::PatternShard> TripleTable::ShardPattern(
    const BoundPattern& pattern, int max_shards) const {
  if (max_shards < 1) max_shards = 1;
  const auto choice = ChooseIndex(pattern);
  Order order = Order::kSPO;
  int prefix_len = 0;
  Key lo{0, 0, 0};
  bool full_scan = true;
  if (choice.has_value()) {
    order = choice->first;
    prefix_len = choice->second;
    const Triple bound{pattern.subject.value_or(0),
                       pattern.predicate.value_or(0),
                       pattern.object.value_or(0)};
    const Key full = MakeKey(order, bound);
    for (int i = 0; i < prefix_len; ++i) lo[i] = full[i];
    full_scan = false;
  }
  const auto within = [&](const Key& k) {
    for (int i = 0; i < prefix_len; ++i) {
      if (k[i] != lo[i]) return false;
    }
    return true;
  };
  const std::vector<Key> starts =
      IndexFor(order)->ShardStarts(lo, max_shards, within);
  std::vector<PatternShard> shards;
  shards.reserve(starts.size());
  for (size_t i = 0; i < starts.size(); ++i) {
    PatternShard s;
    s.begin = starts[i];
    if (i + 1 < starts.size()) {
      s.has_end = true;
      s.end = starts[i + 1];
    }
    s.order = static_cast<int>(order);
    s.prefix_len = prefix_len;
    s.full_scan = full_scan;
    shards.push_back(s);
  }
  return shards;
}

Status TripleTable::ScanShard(
    const PatternShard& shard, const BoundPattern& pattern, CostMeter* meter,
    const std::function<bool(const Triple&)>& fn) const {
  // `shard.begin` carries the same bound prefix as the original scan's
  // lower bound, so the prefix check against it is the range-end check.
  // The serial full-table scan charges no descent; mirror that here.
  return RangeScan(static_cast<Order>(shard.order), shard.begin,
                   shard.prefix_len, shard.has_end ? &shard.end : nullptr,
                   /*charge_probe=*/!shard.full_scan,
                   shard.full_scan ? Op::kSeqScanTuple : Op::kIndexScanTuple,
                   pattern, meter, fn);
}

uint64_t TripleTable::EstimateMatches(const BoundPattern& p) const {
  if (p.predicate.has_value()) {
    const auto it = stats_.find(*p.predicate);
    if (it == stats_.end()) return 0;
    const MutableStats& st = it->second;
    double est = static_cast<double>(st.num_triples);
    if (p.subject.has_value()) {
      est /= std::max<uint64_t>(1, st.subjects.size());
    }
    if (p.object.has_value()) {
      est /= std::max<uint64_t>(1, st.objects.size());
    }
    return static_cast<uint64_t>(std::max(1.0, est));
  }
  // Variable predicate: assume uniformity across the whole table.
  double est = static_cast<double>(num_rows_);
  if (p.subject.has_value()) est /= std::max<uint64_t>(1, SubjectCount());
  if (p.object.has_value()) est /= std::max<uint64_t>(1, ObjectCount());
  return static_cast<uint64_t>(std::max(1.0, est));
}

PredicateTableStats TripleTable::StatsOf(TermId predicate) const {
  const auto it = stats_.find(predicate);
  if (it == stats_.end()) return {};
  return {it->second.num_triples,
          static_cast<uint64_t>(it->second.subjects.size()),
          static_cast<uint64_t>(it->second.objects.size())};
}

std::vector<TermId> TripleTable::Predicates() const {
  std::vector<TermId> out;
  out.reserve(stats_.size());
  for (const auto& [p, _] : stats_) out.push_back(p);
  return out;
}

}  // namespace dskg::relstore
