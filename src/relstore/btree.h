#ifndef DSKG_RELSTORE_BTREE_H_
#define DSKG_RELSTORE_BTREE_H_

/// \file btree.h
/// In-memory B+-tree used for the relational store's secondary indexes.
///
/// The tree stores fixed-width composite keys (permuted triples) in sorted
/// order in its leaves — the classic RDBMS secondary-index layout.
/// Operations:
///
///   * `Insert(key)`    — O(log n), duplicates ignored (set semantics)
///   * `Erase(key)`     — O(log n), full delete with underflow handling:
///                        an underfull node borrows from a sibling when it
///                        can and merges with one otherwise, so the tree
///                        stays balanced under sustained deletion (the
///                        online-update subsystem deletes continuously)
///   * `LowerBound(key)`— O(log n) descent, then an iterator that walks
///                        leaves left to right via a parent stack
///
/// Memory layout — *pool-allocated fixed-capacity nodes*: nodes are flat
/// structs with inline `Key[kMaxKeys + 1]` arrays (the +1 is overflow
/// slack so a split runs after the insert), addressed by `uint32_t` node
/// ids instead of `unique_ptr`s. Leaves and inner nodes live in two
/// per-tree chunked slabs (`StableVector`) whose element addresses never
/// move, so concurrent snapshot readers can traverse nodes while the
/// writer allocates; the id's top bit tags which pool it points into.
/// Nodes freed by merges are recycled through per-pool LIFO free lists,
/// so sustained churn at constant size allocates nothing at all.
///
/// Copy-on-write snapshots (the online store's read path): with
/// `SetCopyOnWrite(true)`, every mutation first clones the root-to-leaf
/// path it touches into fresh pool nodes (`BeginCowBatch` bounds what
/// counts as already-owned), leaving every node reachable from a
/// previously published root byte-for-byte intact. The writer publishes
/// the new `root()` per batch; superseded nodes park on a pending-reclaim
/// list until `ReclaimRetired()` — called only after
/// `EpochManager::WaitUntilDrained` proves no reader can still be
/// traversing them — returns their slots to the free lists. Readers
/// therefore traverse an immutable tree for the price of one root id, and
/// the store keeps ONE copy of the data plus per-batch path deltas
/// (O(batch · height) nodes) instead of a full second replica. Offline
/// (the default), mutations edit nodes in place exactly as before — same
/// pool growth, same free-list order, same bytes.
///
/// Read entry points come in root-parameterized form (`ContainsAt`,
/// `LowerBoundAt`, `BeginAt`, `ShardStartsAt`) used by snapshot readers,
/// with the classic forms reading the live root.
///
/// Split heuristic: a leaf split normally divides keys evenly, but when
/// the overflowing insert landed at the leaf's first or last slot — an
/// ascending or descending run, the dominant pattern when a permutation
/// index ingests a generated or sorted dataset — the split leaves the run
/// side nearly empty and the other side full. Sequential loads therefore
/// pack leaves to ~100% instead of 50%, roughly halving slab bytes; a
/// run-boundary leaf can sit below the half-full occupancy bound until a
/// deletion touches it, which `Erase`'s borrow/merge already handles.
///
/// Invalidation: live-root `Iterator`s are only stable across const
/// operations. Snapshot-root iterators stay valid until `ReclaimRetired`
/// recycles that snapshot's nodes (the epoch protocol's job to prevent).
///
/// The node fan-out is deliberately page-like (`kMaxKeys` = 64) so that a
/// root-to-leaf descent has realistic depth for the cost model's
/// `kIndexProbe` weight to represent.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/stable_vector.h"
#include "common/status.h"

namespace dskg::relstore {

/// A B+-tree over keys of type `Key` ordered by `operator<`.
/// `Key` must be copyable and totally ordered.
template <typename Key>
class BPlusTree {
 public:
  static constexpr int kMaxKeys = 64;
  static constexpr int kMinKeys = kMaxKeys / 2;

  /// Pool-tagged node handle: the top bit selects the leaf pool, the rest
  /// indexes into it. Exposed so snapshot owners can hold a published
  /// root; treat as opaque.
  using NodeId = uint32_t;
  static constexpr NodeId kNoNode = 0xFFFFFFFFu;

 private:
  static constexpr NodeId kLeafBit = 0x80000000u;
  /// Deepest descent the iterator stack supports; fan-out 65 makes even
  /// 2^32 keys fit in 6 levels.
  static constexpr int kMaxDepth = 16;

  struct LeafNode {
    uint16_t num_keys = 0;
    /// One slot of overflow slack: an insert may briefly hold
    /// kMaxKeys + 1 keys before the split restores the bound.
    Key keys[kMaxKeys + 1];
  };

  struct InnerNode {
    uint16_t num_keys = 0;
    Key keys[kMaxKeys + 1];
    NodeId children[kMaxKeys + 2];
  };

 public:
  BPlusTree() { root_ = AllocLeaf(); }

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = delete;
  BPlusTree& operator=(BPlusTree&&) = delete;

  /// Pre-sizes the leaf pool for roughly `num_keys` keys at ~2/3
  /// occupancy (inner nodes are two orders of magnitude fewer and grow
  /// on demand). Purely an allocation hint for bulk loads; never shrinks.
  void Reserve(size_t num_keys) {
    leaves_.reserve(num_keys / (kMaxKeys * 2 / 3) + 4);
  }

  // ---- copy-on-write control (single writer) ------------------------------

  /// Switches mutation mode. Offline (false, the default) mutations edit
  /// nodes in place. Online (true) every mutation clones the path it
  /// touches, preserving all nodes reachable from previously published
  /// roots. Toggle only while no snapshot is outstanding.
  void SetCopyOnWrite(bool on) { cow_ = on; }

  /// Starts a new copy-on-write batch: nodes cloned or allocated from now
  /// on are owned by this batch and may be edited in place; everything
  /// older is cloned on first touch. Publish `root()` when the batch is
  /// done.
  void BeginCowBatch() { fresh_.clear(); }

  /// Returns every pending-reclaim node slot to the free lists. Call only
  /// after the epoch protocol proves no reader still traverses a root
  /// that references them. Returns the number of slots recycled.
  size_t ReclaimRetired() {
    const size_t n = retired_.size();
    for (const NodeId id : retired_) {
      if (IsLeaf(id)) {
        free_leaves_.push_back(id);
      } else {
        free_inners_.push_back(id);
      }
    }
    retired_.clear();
    return n;
  }

  /// The current root handle. A published root plus the immutability
  /// guarantee of copy-on-write mode is a consistent snapshot of the
  /// whole tree.
  NodeId root() const { return root_; }

  /// Builds the tree from strictly ascending `sorted_keys` at full leaf
  /// occupancy, bottom-up, replacing the current (empty) contents — the
  /// fresh-load path. Versus inserting one by one, packed leaves roughly
  /// halve slab bytes and the build is one pass with O(#nodes) work; a
  /// later insert into a packed leaf simply splits it, and the rightmost
  /// leaf/tail inner may hold fewer than `kMinKeys` entries until a
  /// deletion touches them (same as a split-heuristic run boundary).
  /// Requires `empty()`, `sorted_keys` strictly increasing, and no
  /// outstanding snapshot (bulk loads precede online publication).
  void BulkBuild(const std::vector<Key>& sorted_keys) {
    assert(empty());
    assert(retired_.empty());
    leaves_.clear();
    inners_.clear();
    free_leaves_.clear();
    free_inners_.clear();
    fresh_.clear();
    height_ = 1;
    if (sorted_keys.empty()) {
      root_ = AllocLeaf();
      return;
    }
    const size_t n = sorted_keys.size();
    // Level 0: packed leaves, left to right.
    leaves_.reserve((n + kMaxKeys - 1) / kMaxKeys);
    std::vector<NodeId> level;       // current level's nodes
    std::vector<Key> level_first;    // first key of each node's subtree
    for (size_t i = 0; i < n; i += kMaxKeys) {
      const size_t cnt = std::min<size_t>(kMaxKeys, n - i);
      const NodeId id = AllocLeaf();
      LeafNode& leaf = Leaf(id);
      leaf.num_keys = static_cast<uint16_t>(cnt);
      std::copy(sorted_keys.begin() + static_cast<ptrdiff_t>(i),
                sorted_keys.begin() + static_cast<ptrdiff_t>(i + cnt),
                leaf.keys);
      level.push_back(id);
      level_first.push_back(sorted_keys[i]);
    }
    // Upper levels: pack kMaxKeys + 1 children per inner node; separators
    // are the first keys of the right subtrees.
    while (level.size() > 1) {
      std::vector<NodeId> up;
      std::vector<Key> up_first;
      for (size_t i = 0; i < level.size();) {
        size_t cnt = std::min<size_t>(kMaxKeys + 1, level.size() - i);
        if (level.size() - i - cnt == 1) --cnt;  // no 1-child tail node
        const NodeId id = AllocInner();
        InnerNode& node = Inner(id);
        node.num_keys = static_cast<uint16_t>(cnt - 1);
        for (size_t c = 0; c < cnt; ++c) {
          node.children[c] = level[i + c];
          if (c > 0) node.keys[c - 1] = level_first[i + c];
        }
        up.push_back(id);
        up_first.push_back(level_first[i]);
        i += cnt;
      }
      level = std::move(up);
      level_first = std::move(up_first);
      ++height_;
    }
    root_ = level[0];
    size_ = n;
  }

  /// Inserts `key`. Returns true if inserted, false if already present.
  bool Insert(const Key& key) {
    root_ = EnsureOwned(root_);
    InsertResult r = InsertRec(root_, key);
    if (!r.inserted) return false;
    if (r.split_right != kNoNode) {
      // Root split: grow the tree by one level.
      const NodeId new_root = AllocInner();
      InnerNode& nr = Inner(new_root);
      nr.num_keys = 1;
      nr.keys[0] = r.split_key;
      nr.children[0] = root_;
      nr.children[1] = r.split_right;
      root_ = new_root;
      ++height_;
    }
    ++size_;
    return true;
  }

  /// Removes `key`. Returns true if it was present.
  /// A node left under-full (fewer than `kMinKeys` keys) borrows one key
  /// from an adjacent sibling when that sibling can spare it and merges
  /// with the sibling otherwise, keeping deletion-touched nodes at least
  /// half full — the occupancy bound the cost model's `kIndexProbe` depth
  /// and `ShardStarts`'s leaf-granular sharding both assume. Nodes
  /// emptied by merges return to their pool's free list (offline) or park
  /// on the pending-reclaim list (copy-on-write).
  bool Erase(const Key& key) {
    root_ = EnsureOwned(root_);
    if (!EraseRec(root_, key)) return false;
    if (!IsLeaf(root_) && Inner(root_).num_keys == 0) {
      // Root collapse: shrink the tree by one level.
      const NodeId old_root = root_;
      root_ = Inner(root_).children[0];
      DiscardNode(old_root);
      --height_;
    }
    --size_;
    return true;
  }

  /// True if `key` is present (live root).
  bool Contains(const Key& key) const { return ContainsAt(root_, key); }

  /// True if `key` is present under snapshot root `root`.
  bool ContainsAt(NodeId root, const Key& key) const {
    const LeafNode& leaf = Leaf(Descend(root, key));
    const Key* end = leaf.keys + leaf.num_keys;
    const Key* it = std::lower_bound(leaf.keys, end, key);
    return it != end && !(key < *it) && !(*it < key);
  }

  /// Forward iterator over keys in sorted order. Holds the root-to-leaf
  /// descent path inline, advancing across leaves through the deepest
  /// ancestor with an unvisited child — no leaf links, so a snapshot
  /// reader touches only nodes reachable from its root. Stable while the
  /// nodes under its root are not edited or reclaimed: for the live root
  /// that means across const operations only; for a published
  /// copy-on-write root, until the snapshot is drained and reclaimed.
  class Iterator {
   public:
    Iterator() = default;

    bool AtEnd() const { return tree_ == nullptr; }

    const Key& operator*() const {
      assert(!AtEnd());
      const Frame& f = path_[depth_ - 1];
      return tree_->Leaf(f.id).keys[f.idx];
    }

    Iterator& operator++() {
      assert(!AtEnd());
      Frame& f = path_[depth_ - 1];
      ++f.idx;
      if (f.idx >= tree_->Leaf(f.id).num_keys) NextLeaf();
      return *this;
    }

   private:
    friend class BPlusTree;
    struct Frame {
      NodeId id = kNoNode;
      uint16_t idx = 0;  ///< child index (inner frames) / key slot (leaf)
    };

    /// Positions at the first key >= `*lower` (or the first key overall
    /// when `lower` is null) under `root`.
    Iterator(const BPlusTree* tree, NodeId root, const Key* lower)
        : tree_(tree) {
      NodeId id = root;
      while (!IsLeaf(id)) {
        const InnerNode& node = tree_->Inner(id);
        const uint16_t ci =
            lower == nullptr
                ? uint16_t{0}
                : static_cast<uint16_t>(ChildIndex(node, *lower));
        assert(depth_ < kMaxDepth);
        path_[depth_++] = {id, ci};
        id = node.children[ci];
      }
      const LeafNode& leaf = tree_->Leaf(id);
      uint16_t slot = 0;
      if (lower != nullptr) {
        const Key* it =
            std::lower_bound(leaf.keys, leaf.keys + leaf.num_keys, *lower);
        slot = static_cast<uint16_t>(it - leaf.keys);
      }
      assert(depth_ < kMaxDepth);
      path_[depth_++] = {id, slot};
      if (slot >= leaf.num_keys) NextLeaf();
    }

    /// Abandons the current leaf and descends to the next one's first
    /// key; ends the iterator when no ancestor has an unvisited child.
    void NextLeaf() {
      --depth_;  // pop the leaf frame
      while (depth_ > 0) {
        Frame& f = path_[depth_ - 1];
        const InnerNode& node = tree_->Inner(f.id);
        if (f.idx < node.num_keys) {  // children run 0..num_keys
          ++f.idx;
          NodeId id = node.children[f.idx];
          while (!IsLeaf(id)) {
            assert(depth_ < kMaxDepth);
            path_[depth_++] = {id, 0};
            id = tree_->Inner(id).children[0];
          }
          assert(depth_ < kMaxDepth);
          path_[depth_++] = {id, 0};
          // Non-root leaves hold >= 1 key (occupancy invariant), so the
          // new position is valid.
          return;
        }
        --depth_;
      }
      tree_ = nullptr;
    }

    const BPlusTree* tree_ = nullptr;
    Frame path_[kMaxDepth];
    int depth_ = 0;
  };

  /// Iterator positioned at the first key >= `key` (live root).
  Iterator LowerBound(const Key& key) const { return LowerBoundAt(root_, key); }

  /// Iterator positioned at the first key >= `key` under `root`.
  Iterator LowerBoundAt(NodeId root, const Key& key) const {
    return Iterator(this, root, &key);
  }

  /// Iterator over the whole tree in sorted order (live root).
  Iterator Begin() const { return BeginAt(root_); }

  /// Iterator over the whole snapshot under `root`.
  Iterator BeginAt(NodeId root) const {
    return Iterator(this, root, nullptr);
  }

  /// Splits the key range [first key >= `lo`, first key failing `within`)
  /// into at most `max_shards` contiguous subranges aligned to leaf
  /// boundaries and returns the first key of each subrange, ascending.
  /// `within(key)` must be monotone: once false it stays false for all
  /// larger keys (a range-end predicate such as a prefix match). Returns
  /// an empty vector when no key of the tree is in range. Shard i covers
  /// [result[i], result[i+1]) — the last shard is bounded by `within`
  /// alone. Cost: one leaf walk over the range (no key is visited twice;
  /// O(#leaves in range)).
  template <typename Pred>
  std::vector<Key> ShardStarts(const Key& lo, int max_shards,
                               Pred within) const {
    return ShardStartsAt(root_, lo, max_shards, within);
  }

  template <typename Pred>
  std::vector<Key> ShardStartsAt(NodeId root, const Key& lo, int max_shards,
                                 Pred within) const {
    // Collect the first in-range key of every leaf overlapping the range.
    std::vector<Key> leaf_starts;
    for (Iterator it(this, root, &lo); !it.AtEnd(); it.NextLeaf()) {
      const Key& first = *it;
      if (!within(first)) break;  // past the range end
      leaf_starts.push_back(first);
    }
    if (leaf_starts.empty() || max_shards <= 1) {
      if (!leaf_starts.empty()) return {leaf_starts.front()};
      return {};
    }
    // Pick evenly spaced leaf starts as shard boundaries.
    const size_t n = leaf_starts.size();
    const size_t shards = std::min<size_t>(static_cast<size_t>(max_shards), n);
    std::vector<Key> out;
    out.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      out.push_back(leaf_starts[s * n / shards]);
    }
    return out;
  }

  /// Number of keys stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf). The cost model charges one
  /// `kIndexProbe` per descent regardless; height is exposed for tests.
  int height() const { return height_; }

  /// Nodes currently reachable from the live root (excludes free-listed
  /// slots and retired-but-undrained copy-on-write nodes).
  size_t live_nodes() const {
    return leaves_.size() + inners_.size() - free_leaves_.size() -
           free_inners_.size() - retired_.size();
  }

  /// Superseded copy-on-write nodes awaiting `ReclaimRetired` — still
  /// allocated (old snapshots may traverse them) but no longer reachable
  /// from the live root.
  size_t pending_nodes() const { return retired_.size(); }

  /// Nodes cloned by the copy-on-write gate since construction
  /// (monotone; batch deltas come from subtracting reads). Written only
  /// by the tree's single mutator thread.
  uint64_t cow_clones() const { return cow_clones_; }

  /// Pool slots ever allocated (live + pending-reclaim + free).
  size_t pool_nodes() const { return leaves_.size() + inners_.size(); }

  /// Free-listed node slots awaiting reuse (exposed for churn tests).
  size_t free_nodes() const {
    return free_leaves_.size() + free_inners_.size();
  }

  /// Bytes of the node slabs plus free-list and pending-reclaim
  /// bookkeeping. Deterministic for a given operation sequence (counts
  /// pool slots, not chunk capacity), which is what the bench baselines
  /// track as bytes/triple.
  uint64_t MemoryBytes() const {
    return static_cast<uint64_t>(leaves_.size()) * sizeof(LeafNode) +
           static_cast<uint64_t>(inners_.size()) * sizeof(InnerNode) +
           (free_leaves_.size() + free_inners_.size() + retired_.size()) *
               sizeof(NodeId);
  }

  // ---- persistence (the snapshot tier's slab codec) -------------------------

  /// Appends the whole tree — both node slabs, the free lists, root and
  /// shape — to `out` in the snapshot wire format: node ids are preserved
  /// verbatim so a restored tree is slot-for-slot identical (same ids,
  /// same free-list recycling order, hence the same behavior under every
  /// later mutation). Per slot only `num_keys` live keys are written, so
  /// the encoding is deterministic for a given operation history.
  /// Requires a quiescent tree: no pending-reclaim copy-on-write nodes
  /// (snapshot between batches, after `ReclaimRetired`).
  Status SerializeTo(std::string* out) const {
    static_assert(std::is_trivially_copyable_v<Key>,
                  "B+-tree snapshot codec stores keys as raw bytes");
    if (!retired_.empty()) {
      return Status::FailedPrecondition(
          "cannot serialize a B+-tree with pending-reclaim nodes");
    }
    PutU64(out, size_);
    PutU32(out, static_cast<uint32_t>(height_));
    PutU32(out, root_);
    PutU32(out, static_cast<uint32_t>(leaves_.size()));
    PutU32(out, static_cast<uint32_t>(inners_.size()));
    for (size_t i = 0; i < leaves_.size(); ++i) {
      const LeafNode& leaf = leaves_[i];
      PutU16(out, leaf.num_keys);
      PutBytes(out, leaf.keys, sizeof(Key) * leaf.num_keys);
    }
    for (size_t i = 0; i < inners_.size(); ++i) {
      const InnerNode& node = inners_[i];
      PutU16(out, node.num_keys);
      PutBytes(out, node.keys, sizeof(Key) * node.num_keys);
      for (uint16_t c = 0; c <= node.num_keys; ++c) {
        PutU32(out, node.children[c]);
      }
    }
    PutU32(out, static_cast<uint32_t>(free_leaves_.size()));
    for (const NodeId id : free_leaves_) PutU32(out, id);
    PutU32(out, static_cast<uint32_t>(free_inners_.size()));
    for (const NodeId id : free_inners_) PutU32(out, id);
    return Status::OK();
  }

  /// Replaces the tree's contents with a `SerializeTo` image. Validates
  /// node counts, key counts and id ranges (defense in depth behind the
  /// snapshot checksums) and leaves the tree in offline mode with no
  /// batch state — the restore path flips copy-on-write back on after
  /// every structure is rebuilt.
  Status DeserializeFrom(ByteReader* in) {
    static_assert(std::is_trivially_copyable_v<Key>,
                  "B+-tree snapshot codec stores keys as raw bytes");
    uint64_t size = 0;
    uint32_t height = 0, root = 0, num_leaves = 0, num_inners = 0;
    DSKG_RETURN_NOT_OK(in->ReadU64(&size));
    DSKG_RETURN_NOT_OK(in->ReadU32(&height));
    DSKG_RETURN_NOT_OK(in->ReadU32(&root));
    DSKG_RETURN_NOT_OK(in->ReadU32(&num_leaves));
    DSKG_RETURN_NOT_OK(in->ReadU32(&num_inners));
    if (height < 1 || height > static_cast<uint32_t>(kMaxDepth)) {
      return Status::IoError("b+-tree image: bad height " +
                             std::to_string(height));
    }
    const auto valid_id = [&](NodeId id) {
      return IsLeaf(id) ? (id & ~kLeafBit) < num_leaves : id < num_inners;
    };
    leaves_.clear();
    inners_.clear();
    free_leaves_.clear();
    free_inners_.clear();
    retired_.clear();
    fresh_.clear();
    leaves_.reserve(num_leaves);
    inners_.reserve(num_inners);
    for (uint32_t i = 0; i < num_leaves; ++i) {
      LeafNode& leaf = leaves_.emplace_back();
      uint16_t n = 0;
      DSKG_RETURN_NOT_OK(in->ReadU16(&n));
      if (n > kMaxKeys) {
        return Status::IoError("b+-tree image: leaf key count " +
                               std::to_string(n));
      }
      leaf.num_keys = n;
      DSKG_RETURN_NOT_OK(in->ReadBytes(leaf.keys, sizeof(Key) * n));
    }
    for (uint32_t i = 0; i < num_inners; ++i) {
      InnerNode& node = inners_.emplace_back();
      uint16_t n = 0;
      DSKG_RETURN_NOT_OK(in->ReadU16(&n));
      if (n > kMaxKeys) {
        return Status::IoError("b+-tree image: inner key count " +
                               std::to_string(n));
      }
      node.num_keys = n;
      DSKG_RETURN_NOT_OK(in->ReadBytes(node.keys, sizeof(Key) * n));
      for (uint16_t c = 0; c <= n; ++c) {
        DSKG_RETURN_NOT_OK(in->ReadU32(&node.children[c]));
      }
    }
    // Children of free-listed slots are stale but were valid ids when the
    // slot was live, and slabs never shrink — so every child must parse.
    for (uint32_t i = 0; i < num_inners; ++i) {
      const InnerNode& node = inners_[i];
      for (uint16_t c = 0; c <= node.num_keys; ++c) {
        if (!valid_id(node.children[c])) {
          return Status::IoError("b+-tree image: child id out of range");
        }
      }
    }
    if (!valid_id(root)) {
      return Status::IoError("b+-tree image: root id out of range");
    }
    const auto read_free = [&](std::vector<NodeId>* list, bool leaf_pool) {
      uint32_t n = 0;
      DSKG_RETURN_NOT_OK(in->ReadU32(&n));
      if (n > (leaf_pool ? num_leaves : num_inners)) {
        return Status::IoError("b+-tree image: free-list overflow");
      }
      list->reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        NodeId id = kNoNode;
        DSKG_RETURN_NOT_OK(in->ReadU32(&id));
        if (IsLeaf(id) != leaf_pool || !valid_id(id)) {
          return Status::IoError("b+-tree image: free-list id out of range");
        }
        list->push_back(id);
      }
      return Status::OK();
    };
    DSKG_RETURN_NOT_OK(read_free(&free_leaves_, /*leaf_pool=*/true));
    DSKG_RETURN_NOT_OK(read_free(&free_inners_, /*leaf_pool=*/false));
    root_ = root;
    size_ = size;
    height_ = static_cast<int>(height);
    cow_ = false;
    cow_clones_ = 0;
    return Status::OK();
  }

 private:
  struct InsertResult {
    bool inserted = false;
    Key split_key{};
    NodeId split_right = kNoNode;
  };

  static bool IsLeaf(NodeId id) { return (id & kLeafBit) != 0; }

  LeafNode& Leaf(NodeId id) { return leaves_[id & ~kLeafBit]; }
  const LeafNode& Leaf(NodeId id) const { return leaves_[id & ~kLeafBit]; }
  InnerNode& Inner(NodeId id) { return inners_[id]; }
  const InnerNode& Inner(NodeId id) const { return inners_[id]; }

  /// Root-to-leaf descent for `key` under `root`.
  NodeId Descend(NodeId root, const Key& key) const {
    NodeId id = root;
    while (!IsLeaf(id)) {
      const InnerNode& node = Inner(id);
      id = node.children[ChildIndex(node, key)];
    }
    return id;
  }

  /// Takes a slot from the pool's free list (LIFO) or grows the slab.
  /// Slabs are chunked and never move, so node references held across a
  /// call stay valid. In copy-on-write mode the new node is owned by the
  /// current batch.
  NodeId AllocLeaf() {
    NodeId id;
    if (!free_leaves_.empty()) {
      id = free_leaves_.back();
      free_leaves_.pop_back();
    } else {
      id = static_cast<NodeId>(leaves_.size()) | kLeafBit;
      leaves_.emplace_back();
    }
    LeafNode& leaf = Leaf(id);
    leaf.num_keys = 0;
    if (cow_) fresh_.insert(id);
    return id;
  }

  NodeId AllocInner() {
    NodeId id;
    if (!free_inners_.empty()) {
      id = free_inners_.back();
      free_inners_.pop_back();
    } else {
      id = static_cast<NodeId>(inners_.size());
      inners_.emplace_back();
    }
    Inner(id).num_keys = 0;
    if (cow_) fresh_.insert(id);
    return id;
  }

  /// Copy-on-write gate: a node the current batch does not own is cloned
  /// into a fresh slot and the original parks on the pending-reclaim
  /// list (readers of previously published roots may still traverse it).
  /// Offline, or for batch-owned nodes, the id passes through untouched.
  NodeId EnsureOwned(NodeId id) {
    if (!cow_ || fresh_.count(id) != 0) return id;
    ++cow_clones_;
    if (IsLeaf(id)) {
      const NodeId copy = AllocLeaf();
      Leaf(copy) = Leaf(id);
      retired_.push_back(id);
      return copy;
    }
    const NodeId copy = AllocInner();
    Inner(copy) = Inner(id);
    retired_.push_back(id);
    return copy;
  }

  /// Drops a node the tree no longer references: batch-owned (or
  /// offline) nodes return straight to the free list; published nodes
  /// park on the pending-reclaim list.
  void DiscardNode(NodeId id) {
    if (cow_ && fresh_.count(id) == 0) {
      retired_.push_back(id);
      return;
    }
    fresh_.erase(id);
    if (IsLeaf(id)) {
      free_leaves_.push_back(id);
    } else {
      free_inners_.push_back(id);
    }
  }

  /// Shifts `arr[pos, n)` right by one and writes `v` at `pos`.
  template <typename T>
  static void ArrInsert(T* arr, size_t n, size_t pos, const T& v) {
    std::copy_backward(arr + pos, arr + n, arr + n + 1);
    arr[pos] = v;
  }

  /// Removes `arr[pos]` from `arr[0, n)`, shifting the tail left.
  template <typename T>
  static void ArrRemove(T* arr, size_t n, size_t pos) {
    std::copy(arr + pos + 1, arr + n, arr + pos);
  }

  /// Index of the child subtree that may contain `key`.
  /// Inner node invariant: child i holds keys < keys[i]; the last child
  /// holds keys >= keys[num_keys - 1].
  static size_t ChildIndex(const InnerNode& node, const Key& key) {
    const Key* it =
        std::upper_bound(node.keys, node.keys + node.num_keys, key);
    return static_cast<size_t>(it - node.keys);
  }

  /// `id` is always batch-owned on entry (the caller cloned it), so its
  /// fields may be edited in place; children are cloned on first touch as
  /// the descent reaches them.
  InsertResult InsertRec(NodeId id, const Key& key) {
    if (IsLeaf(id)) {
      LeafNode& leaf = Leaf(id);
      Key* end = leaf.keys + leaf.num_keys;
      Key* it = std::lower_bound(leaf.keys, end, key);
      if (it != end && !(key < *it) && !(*it < key)) {
        return {};  // duplicate
      }
      const size_t slot = static_cast<size_t>(it - leaf.keys);
      ArrInsert(leaf.keys, leaf.num_keys, slot, key);
      ++leaf.num_keys;
      InsertResult r;
      r.inserted = true;
      if (leaf.num_keys > kMaxKeys) SplitLeaf(id, slot, &r);
      return r;
    }
    InnerNode& node = Inner(id);
    const size_t ci = ChildIndex(node, key);
    const NodeId child = EnsureOwned(node.children[ci]);
    node.children[ci] = child;
    InsertResult child_r = InsertRec(child, key);
    if (!child_r.inserted) return {};
    InsertResult r;
    r.inserted = true;
    if (child_r.split_right != kNoNode) {
      ArrInsert(node.keys, node.num_keys, ci, child_r.split_key);
      ArrInsert(node.children, node.num_keys + 1, ci + 1,
                child_r.split_right);
      ++node.num_keys;
      if (node.num_keys > kMaxKeys) SplitInner(id, &r);
    }
    return r;
  }

  /// `insert_slot` is where the overflowing key landed: a first/last-slot
  /// insert is an ascending/descending run, so the split leaves the run
  /// side nearly empty instead of halving (see the file comment).
  void SplitLeaf(NodeId id, size_t insert_slot, InsertResult* r) {
    const NodeId right_id = AllocLeaf();
    LeafNode& leaf = Leaf(id);
    LeafNode& right = Leaf(right_id);
    uint16_t mid;
    if (insert_slot == static_cast<size_t>(leaf.num_keys) - 1) {
      mid = leaf.num_keys - 1;  // ascending run: left stays full
    } else if (insert_slot == 0) {
      mid = 1;  // descending run: right stays full
    } else {
      mid = leaf.num_keys / 2;
    }
    right.num_keys = leaf.num_keys - mid;
    std::copy(leaf.keys + mid, leaf.keys + leaf.num_keys, right.keys);
    leaf.num_keys = mid;
    r->split_key = right.keys[0];
    r->split_right = right_id;
  }

  void SplitInner(NodeId id, InsertResult* r) {
    const NodeId right_id = AllocInner();
    InnerNode& node = Inner(id);
    InnerNode& right = Inner(right_id);
    // keys[mid] moves up; keys right of it and children right of mid+1
    // move to the new node.
    const uint16_t mid = node.num_keys / 2;
    r->split_key = node.keys[mid];
    right.num_keys = node.num_keys - mid - 1;
    std::copy(node.keys + mid + 1, node.keys + node.num_keys, right.keys);
    std::copy(node.children + mid + 1, node.children + node.num_keys + 1,
              right.children);
    node.num_keys = mid;
    r->split_right = right_id;
  }

  /// `id` is batch-owned on entry, like `InsertRec`.
  bool EraseRec(NodeId id, const Key& key) {
    if (IsLeaf(id)) {
      LeafNode& leaf = Leaf(id);
      Key* end = leaf.keys + leaf.num_keys;
      Key* it = std::lower_bound(leaf.keys, end, key);
      if (it == end || key < *it || *it < key) return false;
      ArrRemove(leaf.keys, leaf.num_keys, static_cast<size_t>(it - leaf.keys));
      --leaf.num_keys;
      return true;
    }
    InnerNode& node = Inner(id);
    const size_t ci = ChildIndex(node, key);
    const NodeId child = EnsureOwned(node.children[ci]);
    node.children[ci] = child;
    if (!EraseRec(child, key)) return false;
    if (KeyCount(child) < kMinKeys) Rebalance(id, ci);
    return true;
  }

  uint16_t KeyCount(NodeId id) const {
    return IsLeaf(id) ? Leaf(id).num_keys : Inner(id).num_keys;
  }

  /// Restores the occupancy invariant of child `ci` of `parent_id` after a
  /// deletion left it under-full: borrow from a sibling with spare keys,
  /// else merge with one. The parent itself may become under-full; the
  /// caller's recursion handles that one level up. Siblings a borrow or
  /// merge writes into are cloned first (copy-on-write mode); a sibling
  /// that is merely read and discarded is retired, never edited.
  void Rebalance(NodeId parent_id, size_t ci) {
    const InnerNode& parent = Inner(parent_id);
    const bool has_left = ci > 0;
    const bool has_right = ci + 1 < static_cast<size_t>(parent.num_keys) + 1;
    if (has_left && KeyCount(parent.children[ci - 1]) > kMinKeys) {
      BorrowFromLeft(parent_id, ci);
    } else if (has_right && KeyCount(parent.children[ci + 1]) > kMinKeys) {
      BorrowFromRight(parent_id, ci);
    } else if (has_left) {
      MergeChildren(parent_id, ci - 1);
    } else {
      MergeChildren(parent_id, ci);
    }
  }

  /// Moves one key (and, for inner nodes, one child) from the left sibling
  /// into child `ci`, rotating through the parent separator.
  void BorrowFromLeft(NodeId parent_id, size_t ci) {
    InnerNode& parent = Inner(parent_id);
    const NodeId child_id = parent.children[ci];
    const NodeId left_id = EnsureOwned(parent.children[ci - 1]);
    parent.children[ci - 1] = left_id;
    if (IsLeaf(child_id)) {
      LeafNode& child = Leaf(child_id);
      LeafNode& left = Leaf(left_id);
      ArrInsert(child.keys, child.num_keys, 0, left.keys[left.num_keys - 1]);
      ++child.num_keys;
      --left.num_keys;
      parent.keys[ci - 1] = child.keys[0];
    } else {
      InnerNode& child = Inner(child_id);
      InnerNode& left = Inner(left_id);
      const uint16_t ln = left.num_keys;
      ArrInsert(child.keys, child.num_keys, 0, parent.keys[ci - 1]);
      ++child.num_keys;
      parent.keys[ci - 1] = left.keys[ln - 1];
      // Child count is num_keys + 1; child.num_keys already grew by one.
      ArrInsert(child.children, child.num_keys, 0, left.children[ln]);
      left.num_keys = ln - 1;
    }
  }

  /// Mirror image of `BorrowFromLeft` for the right sibling.
  void BorrowFromRight(NodeId parent_id, size_t ci) {
    InnerNode& parent = Inner(parent_id);
    const NodeId child_id = parent.children[ci];
    const NodeId right_id = EnsureOwned(parent.children[ci + 1]);
    parent.children[ci + 1] = right_id;
    if (IsLeaf(child_id)) {
      LeafNode& child = Leaf(child_id);
      LeafNode& right = Leaf(right_id);
      child.keys[child.num_keys] = right.keys[0];
      ++child.num_keys;
      ArrRemove(right.keys, right.num_keys, 0);
      --right.num_keys;
      parent.keys[ci] = right.keys[0];
    } else {
      InnerNode& child = Inner(child_id);
      InnerNode& right = Inner(right_id);
      const uint16_t rn = right.num_keys;
      child.keys[child.num_keys] = parent.keys[ci];
      ++child.num_keys;
      parent.keys[ci] = right.keys[0];
      ArrRemove(right.keys, rn, 0);
      child.children[child.num_keys] = right.children[0];
      ArrRemove(right.children, static_cast<size_t>(rn) + 1, 0);
      right.num_keys = rn - 1;
    }
  }

  /// Merges child `li + 1` into child `li` of `parent_id`. Both are
  /// at-or-below minimum occupancy, so the merged node fits within
  /// `kMaxKeys`. The absorbed right node is only read, so it needs no
  /// clone; it is discarded (freed offline, retired under copy-on-write).
  void MergeChildren(NodeId parent_id, size_t li) {
    InnerNode& parent = Inner(parent_id);
    const NodeId left_id = EnsureOwned(parent.children[li]);
    parent.children[li] = left_id;
    const NodeId right_id = parent.children[li + 1];
    if (IsLeaf(left_id)) {
      LeafNode& left = Leaf(left_id);
      const LeafNode& right = Leaf(right_id);
      std::copy(right.keys, right.keys + right.num_keys,
                left.keys + left.num_keys);
      left.num_keys += right.num_keys;
    } else {
      InnerNode& left = Inner(left_id);
      const InnerNode& right = Inner(right_id);
      left.keys[left.num_keys] = parent.keys[li];
      std::copy(right.keys, right.keys + right.num_keys,
                left.keys + left.num_keys + 1);
      std::copy(right.children, right.children + right.num_keys + 1,
                left.children + left.num_keys + 1);
      left.num_keys += right.num_keys + 1;
    }
    ArrRemove(parent.keys, parent.num_keys, li);
    ArrRemove(parent.children, static_cast<size_t>(parent.num_keys) + 1,
              li + 1);
    --parent.num_keys;
    DiscardNode(right_id);
  }

  StableVector<LeafNode> leaves_;     ///< leaf slab, indexed by id sans tag
  StableVector<InnerNode> inners_;    ///< inner slab, indexed by id
  std::vector<NodeId> free_leaves_;   ///< recycled leaf slots, LIFO
  std::vector<NodeId> free_inners_;   ///< recycled inner slots, LIFO
  std::vector<NodeId> retired_;       ///< superseded COW nodes, undrained
  std::unordered_set<NodeId> fresh_;  ///< nodes owned by the current batch
  NodeId root_ = kNoNode;
  size_t size_ = 0;
  int height_ = 1;
  bool cow_ = false;
  uint64_t cow_clones_ = 0;  ///< lifetime copy-on-write gate clones
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_BTREE_H_
