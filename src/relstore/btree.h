#ifndef DSKG_RELSTORE_BTREE_H_
#define DSKG_RELSTORE_BTREE_H_

/// \file btree.h
/// In-memory B+-tree used for the relational store's secondary indexes.
///
/// The tree stores fixed-width composite keys (permuted triples) in sorted
/// order in its leaves, which are linked for range scans — the classic
/// RDBMS secondary-index layout. Operations:
///
///   * `Insert(key)`    — O(log n), duplicates ignored (set semantics)
///   * `Erase(key)`     — O(log n), full delete with underflow handling:
///                        an underfull node borrows from a sibling when it
///                        can and merges with one otherwise, so the tree
///                        stays balanced under sustained deletion (the
///                        online-update subsystem deletes continuously)
///   * `LowerBound(key)`— O(log n) descent, then an iterator that walks
///                        leaves left to right
///
/// The node fan-out is deliberately page-like (`kMaxKeys` = 64) so that a
/// root-to-leaf descent has realistic depth for the cost model's
/// `kIndexProbe` weight to represent.

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

namespace dskg::relstore {

/// A B+-tree over keys of type `Key` ordered by `operator<`.
/// `Key` must be copyable and totally ordered.
template <typename Key>
class BPlusTree {
 public:
  static constexpr int kMaxKeys = 64;
  static constexpr int kMinKeys = kMaxKeys / 2;

 private:
  struct Node {
    bool is_leaf = true;
    std::vector<Key> keys;
    std::vector<std::unique_ptr<Node>> children;  // inner nodes only
    Node* next_leaf = nullptr;                    // leaves only
  };

 public:
  BPlusTree() : root_(NewLeaf()) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) = default;
  BPlusTree& operator=(BPlusTree&&) = default;

  /// Inserts `key`. Returns true if inserted, false if already present.
  bool Insert(const Key& key) {
    InsertResult r = InsertRec(root_.get(), key);
    if (!r.inserted) return false;
    if (r.split_right != nullptr) {
      // Root split: grow the tree by one level.
      auto new_root = std::make_unique<Node>();
      new_root->is_leaf = false;
      new_root->keys.push_back(r.split_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(r.split_right));
      root_ = std::move(new_root);
      ++height_;
    }
    ++size_;
    return true;
  }

  /// Removes `key`. Returns true if it was present.
  /// A node left under-full (fewer than `kMinKeys` keys) borrows one key
  /// from an adjacent sibling when that sibling can spare it and merges
  /// with the sibling otherwise, keeping every non-root node at least half
  /// full — the occupancy bound the cost model's `kIndexProbe` depth and
  /// `ShardStarts`'s leaf-granular sharding both assume. The leaf chain is
  /// relinked on merges, so range scans and shard boundaries stay exact
  /// under sustained deletion (the online-update subsystem's steady state).
  bool Erase(const Key& key) {
    if (!EraseRec(root_.get(), key)) return false;
    if (!root_->is_leaf && root_->children.size() == 1) {
      // Root collapse: shrink the tree by one level.
      root_ = std::move(root_->children.front());
      --height_;
    }
    --size_;
    return true;
  }

  /// True if `key` is present.
  bool Contains(const Key& key) const {
    const Node* node = root_.get();
    while (!node->is_leaf) {
      node = node->children[ChildIndex(node, key)].get();
    }
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    return it != node->keys.end() && !(key < *it) && !(*it < key);
  }

  /// Forward iterator over keys in sorted order, starting at a leaf slot.
  class Iterator {
   public:
    Iterator() = default;
    Iterator(const Node* leaf, size_t slot) : leaf_(leaf), slot_(slot) {
      SkipEmpty();
    }

    bool AtEnd() const { return leaf_ == nullptr; }

    const Key& operator*() const {
      assert(!AtEnd());
      return leaf_->keys[slot_];
    }

    Iterator& operator++() {
      assert(!AtEnd());
      ++slot_;
      SkipEmpty();
      return *this;
    }

   private:
    void SkipEmpty() {
      while (leaf_ != nullptr && slot_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next_leaf;
        slot_ = 0;
      }
    }
    const Node* leaf_ = nullptr;
    size_t slot_ = 0;
  };

  /// Iterator positioned at the first key >= `key`.
  Iterator LowerBound(const Key& key) const {
    const Node* node = root_.get();
    while (!node->is_leaf) {
      node = node->children[ChildIndex(node, key)].get();
    }
    auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
    return Iterator(node, static_cast<size_t>(it - node->keys.begin()));
  }

  /// Splits the key range [first key >= `lo`, first key failing `within`)
  /// into at most `max_shards` contiguous subranges aligned to leaf
  /// boundaries and returns the first key of each subrange, ascending.
  /// `within(key)` must be monotone: once false it stays false for all
  /// larger keys (a range-end predicate such as a prefix match). Returns
  /// an empty vector when no key of the tree is in range. Shard i covers
  /// [result[i], result[i+1]) — the last shard is bounded by `within`
  /// alone. Cost: one leaf-chain walk over the range (no key is visited
  /// twice; O(#leaves in range)).
  template <typename Pred>
  std::vector<Key> ShardStarts(const Key& lo, int max_shards,
                               Pred within) const {
    // Collect the first in-range key of every leaf overlapping the range.
    std::vector<Key> leaf_starts;
    const Node* node = root_.get();
    while (!node->is_leaf) {
      node = node->children[ChildIndex(node, lo)].get();
    }
    bool first_leaf = true;
    for (; node != nullptr; node = node->next_leaf, first_leaf = false) {
      auto it = first_leaf ? std::lower_bound(node->keys.begin(),
                                              node->keys.end(), lo)
                           : node->keys.begin();
      if (it == node->keys.end()) continue;  // empty(ied) leaf: skip
      if (!within(*it)) break;               // past the range end
      leaf_starts.push_back(*it);
    }
    if (leaf_starts.empty() || max_shards <= 1) {
      if (!leaf_starts.empty()) return {leaf_starts.front()};
      return {};
    }
    // Pick evenly spaced leaf starts as shard boundaries.
    const size_t n = leaf_starts.size();
    const size_t shards = std::min<size_t>(static_cast<size_t>(max_shards), n);
    std::vector<Key> out;
    out.reserve(shards);
    for (size_t s = 0; s < shards; ++s) {
      out.push_back(leaf_starts[s * n / shards]);
    }
    return out;
  }

  /// Iterator over the whole tree in sorted order.
  Iterator Begin() const {
    const Node* node = root_.get();
    while (!node->is_leaf) node = node->children.front().get();
    return Iterator(node, 0);
  }

  /// Number of keys stored.
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (1 = a single leaf). The cost model charges one
  /// `kIndexProbe` per descent regardless; height is exposed for tests.
  int height() const { return height_; }

 private:
  struct InsertResult {
    bool inserted = false;
    Key split_key{};
    std::unique_ptr<Node> split_right;
  };

  static std::unique_ptr<Node> NewLeaf() {
    auto n = std::make_unique<Node>();
    n->is_leaf = true;
    return n;
  }

  /// Index of the child subtree that may contain `key`.
  /// Inner node invariant: child i holds keys < keys[i]; the last child
  /// holds keys >= keys.back().
  static size_t ChildIndex(const Node* node, const Key& key) {
    auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
    return static_cast<size_t>(it - node->keys.begin());
  }

  InsertResult InsertRec(Node* node, const Key& key) {
    if (node->is_leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      if (it != node->keys.end() && !(key < *it) && !(*it < key)) {
        return {};  // duplicate
      }
      node->keys.insert(it, key);
      InsertResult r;
      r.inserted = true;
      if (node->keys.size() > kMaxKeys) SplitLeaf(node, &r);
      return r;
    }
    const size_t ci = ChildIndex(node, key);
    InsertResult child_r = InsertRec(node->children[ci].get(), key);
    if (!child_r.inserted) return {};
    InsertResult r;
    r.inserted = true;
    if (child_r.split_right != nullptr) {
      node->keys.insert(node->keys.begin() + ci, child_r.split_key);
      node->children.insert(node->children.begin() + ci + 1,
                            std::move(child_r.split_right));
      if (node->keys.size() > kMaxKeys) SplitInner(node, &r);
    }
    return r;
  }

  void SplitLeaf(Node* node, InsertResult* r) {
    auto right = NewLeaf();
    const size_t mid = node->keys.size() / 2;
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    node->keys.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
    r->split_key = right->keys.front();
    r->split_right = std::move(right);
  }

  bool EraseRec(Node* node, const Key& key) {
    if (node->is_leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      if (it == node->keys.end() || key < *it || *it < key) return false;
      node->keys.erase(it);
      return true;
    }
    const size_t ci = ChildIndex(node, key);
    if (!EraseRec(node->children[ci].get(), key)) return false;
    if (node->children[ci]->keys.size() < static_cast<size_t>(kMinKeys)) {
      Rebalance(node, ci);
    }
    return true;
  }

  /// Restores the occupancy invariant of `parent->children[ci]` after a
  /// deletion left it under-full: borrow from a sibling with spare keys,
  /// else merge with one. `parent` itself may become under-full; the
  /// caller's recursion handles that one level up.
  void Rebalance(Node* parent, size_t ci) {
    Node* left = ci > 0 ? parent->children[ci - 1].get() : nullptr;
    Node* right = ci + 1 < parent->children.size()
                      ? parent->children[ci + 1].get()
                      : nullptr;
    if (left != nullptr && left->keys.size() > static_cast<size_t>(kMinKeys)) {
      BorrowFromLeft(parent, ci);
    } else if (right != nullptr &&
               right->keys.size() > static_cast<size_t>(kMinKeys)) {
      BorrowFromRight(parent, ci);
    } else if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else {
      MergeChildren(parent, ci);
    }
  }

  /// Moves one key (and, for inner nodes, one child) from the left sibling
  /// into `parent->children[ci]`, rotating through the parent separator.
  void BorrowFromLeft(Node* parent, size_t ci) {
    Node* child = parent->children[ci].get();
    Node* left = parent->children[ci - 1].get();
    if (child->is_leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      left->keys.pop_back();
      parent->keys[ci - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), parent->keys[ci - 1]);
      parent->keys[ci - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
  }

  /// Mirror image of `BorrowFromLeft` for the right sibling.
  void BorrowFromRight(Node* parent, size_t ci) {
    Node* child = parent->children[ci].get();
    Node* right = parent->children[ci + 1].get();
    if (child->is_leaf) {
      child->keys.push_back(right->keys.front());
      right->keys.erase(right->keys.begin());
      parent->keys[ci] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[ci]);
      parent->keys[ci] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
  }

  /// Merges `parent->children[li + 1]` into `parent->children[li]`.
  /// Both are at-or-below minimum occupancy, so the merged node fits
  /// within `kMaxKeys`. Leaf merges relink the leaf chain.
  void MergeChildren(Node* parent, size_t li) {
    Node* left = parent->children[li].get();
    Node* right = parent->children[li + 1].get();
    if (left->is_leaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->next_leaf = right->next_leaf;
    } else {
      left->keys.push_back(parent->keys[li]);
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      for (auto& c : right->children) left->children.push_back(std::move(c));
    }
    parent->keys.erase(parent->keys.begin() + static_cast<ptrdiff_t>(li));
    parent->children.erase(parent->children.begin() +
                           static_cast<ptrdiff_t>(li) + 1);
  }

  void SplitInner(Node* node, InsertResult* r) {
    auto right = std::make_unique<Node>();
    right->is_leaf = false;
    const size_t mid = node->keys.size() / 2;
    // keys[mid] moves up; keys right of it and children right of mid+1 move
    // to the new node.
    r->split_key = node->keys[mid];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    r->split_right = std::move(right);
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_BTREE_H_
