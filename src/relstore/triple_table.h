#ifndef DSKG_RELSTORE_TRIPLE_TABLE_H_
#define DSKG_RELSTORE_TRIPLE_TABLE_H_

/// \file triple_table.h
/// The relational store's base table: a triple table (the paper's
/// relation-based layout) with three covering B+-tree indexes.
///
/// The heap holds `(subject, predicate, object)` rows in insertion order.
/// Secondary indexes store the three permutations SPO, POS and OSP, which
/// together answer any bound/unbound combination of a triple pattern with
/// one index range scan — the plan MySQL would use for small selectivity.
/// Large-selectivity access degrades to full partition/table scans, which
/// is exactly the behaviour the paper's Table 1 attributes to MySQL.
///
/// Share-nothing sharding: the table is split into `num_shards` sub-shards
/// partitioned by `predicate % num_shards`. Each sub-shard owns its own
/// three permutation trees, row counter and statistics maps, so the online
/// store's per-shard applier threads mutate disjoint state with no
/// cross-shard synchronization. With one shard (the default, and every
/// offline caller) the layout, operation order, statistics and simulated
/// charges are exactly the unsharded table's. Bound-predicate operations
/// touch one sub-shard; predicate-unbound scans visit sub-shards in index
/// order 0..N-1 (the serial scan order, which `ShardPattern` consumers
/// reproduce by merging in vector order).
///
/// Snapshot reads: `MakeSnapshot` captures the tables's per-shard B+-tree
/// roots plus summary statistics. Installing it in a thread's `ReadScope`
/// makes every read method on that thread serve the captured state, which
/// combined with the trees' copy-on-write mode gives concurrent readers a
/// consistent, immutable view while the appliers mutate. Without a scope
/// (or under a scope owned by a different table) reads serve live state.
///
/// All access paths charge the `CostMeter` (see common/cost.h).

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/cost.h"
#include "common/status.h"
#include "rdf/triple.h"
#include "relstore/btree.h"

namespace dskg {
class ThreadPool;
}  // namespace dskg

namespace dskg::relstore {

/// A triple pattern with optional bound positions (ids from the shared
/// dictionary). Unbound positions are `std::nullopt`.
struct BoundPattern {
  std::optional<rdf::TermId> subject;
  std::optional<rdf::TermId> predicate;
  std::optional<rdf::TermId> object;

  int NumBound() const {
    return (subject ? 1 : 0) + (predicate ? 1 : 0) + (object ? 1 : 0);
  }
};

/// Per-predicate statistics used by the cardinality estimator.
struct PredicateTableStats {
  uint64_t num_triples = 0;
  uint64_t num_distinct_subjects = 0;
  uint64_t num_distinct_objects = 0;
};

/// Triple table + SPO/POS/OSP B+-tree indexes + statistics, split into
/// share-nothing predicate sub-shards.
class TripleTable {
 public:
  explicit TripleTable(int num_shards = 1)
      : shards_(static_cast<size_t>(num_shards < 1 ? 1 : num_shards)) {}

  TripleTable(const TripleTable&) = delete;
  TripleTable& operator=(const TripleTable&) = delete;

  /// Number of share-nothing predicate sub-shards.
  int num_shards() const { return static_cast<int>(shards_.size()); }

  /// The sub-shard owning `predicate`'s rows.
  int ShardOf(rdf::TermId predicate) const {
    return static_cast<int>(predicate % shards_.size());
  }

  /// Pre-sizes the index node pools for `num_triples` keys total — the
  /// bulk-load path reserves once instead of growing the slabs
  /// incrementally. An allocation hint only; never shrinks.
  void Reserve(uint64_t num_triples) {
    const uint64_t per_shard = num_triples / shards_.size();
    for (SubShard& s : shards_) {
      s.spo.Reserve(per_shard);
      s.pos.Reserve(per_shard);
      s.osp.Reserve(per_shard);
    }
  }

  /// Inserts one triple, maintaining all indexes and statistics.
  /// Duplicate triples are ignored (set semantics, as in an SPO-keyed
  /// table). Charges one `kInsertTuple` when inserted.
  /// Returns true if the triple was new. Touches only the predicate's
  /// sub-shard — safe to call concurrently for triples of *different*
  /// sub-shards.
  bool Insert(const rdf::Triple& t, CostMeter* meter);

  /// Bulk-loads a batch of triples (charges per-tuple insert costs).
  /// Into an empty table this is the packed fresh-load path: each
  /// permutation index is built bottom-up at full leaf occupancy
  /// (`BPlusTree::BulkBuild`), roughly halving index slab bytes versus
  /// one-by-one insertion; rows, statistics and simulated charges are
  /// identical either way. Into a non-empty table it degrades to
  /// per-triple inserts.
  ///
  /// With a `pool`, the fresh path parallelizes key encoding and the
  /// independent per-sub-shard jobs (each permutation's sort + BulkBuild,
  /// the statistics pass). Every job writes disjoint state and the meter
  /// accumulates in exact integer picoseconds, so the loaded table, its
  /// statistics, and every charge component are bit-identical to the
  /// serial load at every thread count.
  void BulkLoad(const std::vector<rdf::Triple>& triples, CostMeter* meter,
                ThreadPool* pool = nullptr);

  /// Bytes of the B+-tree node slabs (SPO + POS + OSP, all sub-shards,
  /// including pending-reclaim bookkeeping). Deterministic for a given
  /// operation sequence — the bench baselines track this as part of
  /// bytes/triple.
  uint64_t IndexBytes() const {
    uint64_t total = 0;
    for (const SubShard& s : shards_) {
      total += s.spo.MemoryBytes() + s.pos.MemoryBytes() + s.osp.MemoryBytes();
    }
    return total;
  }

  /// Live B+-tree nodes across all indexes (footprint diagnostics).
  uint64_t IndexNodes() const {
    uint64_t total = 0;
    for (const SubShard& s : shards_) {
      total += s.spo.live_nodes() + s.pos.live_nodes() + s.osp.live_nodes();
    }
    return total;
  }

  /// Copy-on-write nodes retired by past batches and not yet reclaimed
  /// (zero offline).
  uint64_t PendingNodes() const {
    uint64_t total = 0;
    for (const SubShard& s : shards_) {
      total += s.spo.pending_nodes() + s.pos.pending_nodes() +
               s.osp.pending_nodes();
    }
    return total;
  }

  /// One sub-shard's retired-but-undrained copy-on-write nodes (its
  /// applier's view of `PendingNodes`).
  uint64_t PendingNodesOf(int sub_shard) const {
    const SubShard& s = shards_[static_cast<size_t>(sub_shard)];
    return s.spo.pending_nodes() + s.pos.pending_nodes() +
           s.osp.pending_nodes();
  }

  /// Lifetime copy-on-write clones across one sub-shard's three index
  /// trees (monotone; per-batch churn is a delta of two reads). Read it
  /// from the sub-shard's applier thread or while quiescent.
  uint64_t CowClonesOf(int sub_shard) const {
    const SubShard& s = shards_[static_cast<size_t>(sub_shard)];
    return s.spo.cow_clones() + s.pos.cow_clones() + s.osp.cow_clones();
  }

  /// Removes one triple, maintaining all three indexes and the statistics
  /// (distinct subject/object counts decay exactly — the stats keep
  /// per-term occurrence counts, not just sets). Charges one
  /// `kRemoveTuple` when the triple was present. Returns true if removed.
  /// Sub-shard-local, like `Insert`.
  bool RemoveTriple(const rdf::Triple& t, CostMeter* meter);

  /// True if the exact triple is stored. Charges one index probe.
  bool Contains(const rdf::Triple& t, CostMeter* meter) const;

  /// Streams every triple matching `pattern` to `fn` using the cheapest
  /// access path. Charges probe/scan costs. Stops early (returning
  /// Cancelled) if the meter's budget is exceeded; stops cleanly if `fn`
  /// returns false. Predicate-unbound patterns visit sub-shards in order
  /// (one descent charged per sub-shard for index scans).
  Status ScanPattern(const BoundPattern& pattern, CostMeter* meter,
                     const std::function<bool(const rdf::Triple&)>& fn) const;

  /// One contiguous, leaf-aligned piece of the index range that
  /// `ScanPattern(pattern, ...)` traverses. Produced by `ShardPattern`,
  /// consumed by `ScanShard`; treat the fields as opaque.
  struct PatternShard {
    std::array<rdf::TermId, 3> begin{};  ///< first key of the shard
    std::array<rdf::TermId, 3> end{};    ///< exclusive end (when has_end)
    bool has_end = false;  ///< false for the last shard (range-bounded)
    int order = 0;         ///< internal index order tag
    int prefix_len = 0;    ///< leading bound key components
    bool full_scan = false;  ///< nothing bound: whole-table scan shard
    int sub_shard = 0;     ///< predicate sub-shard the piece lives in
  };

  /// Splits the scan of `pattern` into at most `max_shards` disjoint
  /// shards whose union streams exactly the triples `ScanPattern` would,
  /// in the same global order when shards are consumed in vector order
  /// (ascending `(sub_shard, begin)` — the serial scan order). Returns an
  /// empty vector when nothing matches. Shards align to B+-tree leaves,
  /// so a short range yields fewer shards than requested. No cost is
  /// charged (catalog/boundary lookup only).
  std::vector<PatternShard> ShardPattern(const BoundPattern& pattern,
                                         int max_shards) const;

  /// Streams the triples of one shard to `fn`, charging the same
  /// per-tuple costs as `ScanPattern`. Each shard additionally charges
  /// one `kIndexProbe` for its own root-to-leaf descent, so a scan split
  /// into k shards costs k-1 extra probes versus the serial scan.
  Status ScanShard(const PatternShard& shard, const BoundPattern& pattern,
                   CostMeter* meter,
                   const std::function<bool(const rdf::Triple&)>& fn) const;

  /// Estimated number of triples matching `pattern` (no cost charged;
  /// estimation is a catalog lookup).
  uint64_t EstimateMatches(const BoundPattern& pattern) const;

  /// Statistics of one predicate's partition (zeros if absent).
  PredicateTableStats StatsOf(rdf::TermId predicate) const;

  /// Predicates present in the table, unordered.
  std::vector<rdf::TermId> Predicates() const;

  uint64_t size() const;
  uint64_t num_predicates() const;

  /// Distinct subjects / objects across the whole table (with more than
  /// one sub-shard these sum per-shard distinct counts, so a term used by
  /// several sub-shards counts once per shard — an estimator input, not
  /// an exact cardinality).
  uint64_t SubjectCount() const;
  uint64_t ObjectCount() const;

  // ---- snapshots (the online store's concurrent read path) --------------

  /// An immutable view of the table: per-sub-shard B+-tree roots plus
  /// summary statistics, valid until the copy-on-write nodes it pins are
  /// reclaimed (the epoch protocol's job). Capture at a write-quiescent
  /// point; read through `ReadScope`.
  struct Snapshot {
    struct ShardView {
      uint32_t spo_root = 0;
      uint32_t pos_root = 0;
      uint32_t osp_root = 0;
    };
    const TripleTable* owner = nullptr;
    std::vector<ShardView> shards;
    /// Per-predicate summary stats, sorted by predicate id.
    std::vector<std::pair<rdf::TermId, PredicateTableStats>> stats;
    uint64_t num_rows = 0;
    uint64_t subject_count = 0;
    uint64_t object_count = 0;
  };

  /// Captures the current state. Quiescent only (no concurrent writers).
  Snapshot MakeSnapshot() const;

  /// Installs `snap` as this thread's read source for the owning table —
  /// every read method called on this thread serves the captured state
  /// until the scope dies (scopes nest; the previous source is restored).
  /// A null snapshot, or one owned by another table, leaves reads live.
  class ReadScope {
   public:
    explicit ReadScope(const Snapshot* snap) : prev_(tls_snapshot_) {
      tls_snapshot_ = snap;
    }
    ReadScope(const ReadScope&) = delete;
    ReadScope& operator=(const ReadScope&) = delete;
    ~ReadScope() { tls_snapshot_ = prev_; }

   private:
    const Snapshot* prev_;
  };

  // ---- copy-on-write control (the online store's write path) ------------

  /// Switches every index tree between in-place (offline, default) and
  /// copy-on-write mutation. Toggle only while quiescent.
  void SetCopyOnWrite(bool on) {
    for (SubShard& s : shards_) {
      s.spo.SetCopyOnWrite(on);
      s.pos.SetCopyOnWrite(on);
      s.osp.SetCopyOnWrite(on);
    }
  }

  /// Starts a copy-on-write batch on one sub-shard's trees (called by
  /// that sub-shard's applier; shard-local).
  void BeginShardBatch(int sub_shard) {
    SubShard& s = shards_[static_cast<size_t>(sub_shard)];
    s.spo.BeginCowBatch();
    s.pos.BeginCowBatch();
    s.osp.BeginCowBatch();
  }

  /// Returns one sub-shard's drained copy-on-write nodes to the free
  /// lists. Call after the epoch protocol proves no reader still holds a
  /// root that references them.
  size_t ReclaimShard(int sub_shard) {
    SubShard& s = shards_[static_cast<size_t>(sub_shard)];
    return s.spo.ReclaimRetired() + s.pos.ReclaimRetired() +
           s.osp.ReclaimRetired();
  }

  // ---- persistence (the snapshot tier) ----------------------------------

  /// Appends every sub-shard — the three permutation trees (slab images,
  /// see `BPlusTree::SerializeTo`), row count and statistics — to `out`.
  /// Unordered statistics maps are written sorted by term id so the
  /// encoding is deterministic. Requires quiescence: no pending-reclaim
  /// copy-on-write nodes in any tree.
  Status SerializeTo(std::string* out) const;

  /// Restores a `SerializeTo` image into this (freshly constructed)
  /// table. The shard count must match the image's — row placement is
  /// `predicate % num_shards`. Trees come back in offline mode; the
  /// restore path flips copy-on-write on afterwards.
  Status DeserializeFrom(ByteReader* in);

 private:
  // Index key: a triple permuted into the index's component order.
  using Key = std::array<rdf::TermId, 3>;

  enum class Order { kSPO, kPOS, kOSP };

  static Key MakeKey(Order order, const rdf::Triple& t);
  static rdf::Triple KeyToTriple(Order order, const Key& k);

  /// Chooses the index order and the number of leading bound components
  /// for `pattern`. Returns nullopt if nothing is bound (full scan).
  static std::optional<std::pair<Order, int>> ChooseIndex(
      const BoundPattern& pattern);

  /// Shared scan loop of `ScanPattern` and `ScanShard`: walks keys of one
  /// sub-shard's index from the first >= `lo` while the
  /// `prefix_len`-component prefix matches `lo` (and, when `end` is
  /// non-null, while key < `*end`), charging `tuple_op` per key (plus one
  /// `kIndexProbe` when `charge_probe`). Sets `*stopped` when `fn`
  /// returned false (so multi-shard loops stop cleanly too).
  Status RangeScan(int sub_shard, Order order, const Key& lo, int prefix_len,
                   const Key* end, bool charge_probe, Op tuple_op,
                   const BoundPattern& pattern, CostMeter* meter,
                   const std::function<bool(const rdf::Triple&)>& fn,
                   bool* stopped) const;

  static bool Matches(const BoundPattern& p, const rdf::Triple& t) {
    return (!p.subject || *p.subject == t.subject) &&
           (!p.predicate || *p.predicate == t.predicate) &&
           (!p.object || *p.object == t.object);
  }

  /// Occurrence-counted term sets: `map[id]` is the number of stored
  /// triples using `id` in that position, so deletions can retire a term
  /// exactly when its last occurrence goes (a plain set cannot shrink).
  using TermCounts = std::unordered_map<rdf::TermId, uint64_t>;

  static void CountUp(TermCounts* counts, rdf::TermId id) { ++(*counts)[id]; }
  static void CountDown(TermCounts* counts, rdf::TermId id) {
    auto it = counts->find(id);
    if (it == counts->end()) return;
    if (--it->second == 0) counts->erase(it);
  }

  struct MutableStats {
    uint64_t num_triples = 0;
    TermCounts subjects;
    TermCounts objects;
  };

  /// One share-nothing predicate sub-shard: indexes + row count + stats.
  /// Mutated only by its owning applier (or the single offline writer).
  struct SubShard {
    BPlusTree<Key> spo;
    BPlusTree<Key> pos;
    BPlusTree<Key> osp;
    uint64_t num_rows = 0;
    std::unordered_map<rdf::TermId, MutableStats> stats;
    TermCounts all_subjects;
    TermCounts all_objects;

    BPlusTree<Key>& Index(Order order) {
      switch (order) {
        case Order::kSPO: return spo;
        case Order::kPOS: return pos;
        case Order::kOSP: return osp;
      }
      return spo;
    }
    const BPlusTree<Key>& Index(Order order) const {
      return const_cast<SubShard*>(this)->Index(order);
    }
  };

  /// This thread's installed snapshot if it belongs to this table.
  const Snapshot* CurrentSnapshot() const {
    const Snapshot* s = tls_snapshot_;
    return (s != nullptr && s->owner == this) ? s : nullptr;
  }

  /// Root to traverse for one sub-shard's index: the installed snapshot's
  /// published root, or the live root.
  uint32_t RootFor(const Snapshot* snap, int sub_shard, Order order) const {
    if (snap != nullptr) {
      const Snapshot::ShardView& v =
          snap->shards[static_cast<size_t>(sub_shard)];
      switch (order) {
        case Order::kSPO: return v.spo_root;
        case Order::kPOS: return v.pos_root;
        case Order::kOSP: return v.osp_root;
      }
    }
    return shards_[static_cast<size_t>(sub_shard)].Index(order).root();
  }

  std::vector<SubShard> shards_;

  inline static thread_local const Snapshot* tls_snapshot_ = nullptr;
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_TRIPLE_TABLE_H_
