#ifndef DSKG_RELSTORE_TRIPLE_TABLE_H_
#define DSKG_RELSTORE_TRIPLE_TABLE_H_

/// \file triple_table.h
/// The relational store's base table: a triple table (the paper's
/// relation-based layout) with three covering B+-tree indexes.
///
/// The heap holds `(subject, predicate, object)` rows in insertion order.
/// Secondary indexes store the three permutations SPO, POS and OSP, which
/// together answer any bound/unbound combination of a triple pattern with
/// one index range scan — the plan MySQL would use for small selectivity.
/// Large-selectivity access degrades to full partition/table scans, which
/// is exactly the behaviour the paper's Table 1 attributes to MySQL.
///
/// All access paths charge the `CostMeter` (see common/cost.h).

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/cost.h"
#include "common/status.h"
#include "rdf/triple.h"
#include "relstore/btree.h"

namespace dskg::relstore {

/// A triple pattern with optional bound positions (ids from the shared
/// dictionary). Unbound positions are `std::nullopt`.
struct BoundPattern {
  std::optional<rdf::TermId> subject;
  std::optional<rdf::TermId> predicate;
  std::optional<rdf::TermId> object;

  int NumBound() const {
    return (subject ? 1 : 0) + (predicate ? 1 : 0) + (object ? 1 : 0);
  }
};

/// Per-predicate statistics used by the cardinality estimator.
struct PredicateTableStats {
  uint64_t num_triples = 0;
  uint64_t num_distinct_subjects = 0;
  uint64_t num_distinct_objects = 0;
};

/// Triple table + SPO/POS/OSP B+-tree indexes + statistics.
class TripleTable {
 public:
  TripleTable() = default;

  TripleTable(const TripleTable&) = delete;
  TripleTable& operator=(const TripleTable&) = delete;

  /// Pre-sizes the three index node pools for `num_triples` keys each —
  /// the bulk-load path reserves once instead of growing the slabs
  /// incrementally. An allocation hint only; never shrinks.
  void Reserve(uint64_t num_triples) {
    spo_.Reserve(num_triples);
    pos_.Reserve(num_triples);
    osp_.Reserve(num_triples);
  }

  /// Inserts one triple, maintaining all indexes and statistics.
  /// Duplicate triples are ignored (set semantics, as in an SPO-keyed
  /// table). Charges one `kInsertTuple` when inserted.
  /// Returns true if the triple was new.
  bool Insert(const rdf::Triple& t, CostMeter* meter);

  /// Bulk-loads a batch of triples (charges per-tuple insert costs).
  /// Into an empty table this is the packed fresh-load path: each
  /// permutation index is built bottom-up at full leaf occupancy
  /// (`BPlusTree::BulkBuild`), roughly halving index slab bytes versus
  /// one-by-one insertion; rows, statistics and simulated charges are
  /// identical either way. Into a non-empty table it degrades to
  /// per-triple inserts.
  void BulkLoad(const std::vector<rdf::Triple>& triples, CostMeter* meter);

  /// Bytes of the three B+-tree node slabs (SPO + POS + OSP).
  /// Deterministic for a given operation sequence — the bench baselines
  /// track this as part of bytes/triple.
  uint64_t IndexBytes() const {
    return spo_.MemoryBytes() + pos_.MemoryBytes() + osp_.MemoryBytes();
  }

  /// Live B+-tree nodes across the three indexes (footprint diagnostics).
  uint64_t IndexNodes() const {
    return spo_.live_nodes() + pos_.live_nodes() + osp_.live_nodes();
  }

  /// Removes one triple, maintaining all three indexes and the statistics
  /// (distinct subject/object counts decay exactly — the stats keep
  /// per-term occurrence counts, not just sets). Charges one
  /// `kRemoveTuple` when the triple was present. Returns true if removed.
  bool RemoveTriple(const rdf::Triple& t, CostMeter* meter);

  /// True if the exact triple is stored. Charges one index probe.
  bool Contains(const rdf::Triple& t, CostMeter* meter) const;

  /// Streams every triple matching `pattern` to `fn` using the cheapest
  /// access path. Charges probe/scan costs. Stops early (returning
  /// Cancelled) if the meter's budget is exceeded; stops cleanly if `fn`
  /// returns false.
  Status ScanPattern(const BoundPattern& pattern, CostMeter* meter,
                     const std::function<bool(const rdf::Triple&)>& fn) const;

  /// One contiguous, leaf-aligned piece of the index range that
  /// `ScanPattern(pattern, ...)` traverses. Produced by `ShardPattern`,
  /// consumed by `ScanShard`; treat the fields as opaque.
  struct PatternShard {
    std::array<rdf::TermId, 3> begin{};  ///< first key of the shard
    std::array<rdf::TermId, 3> end{};    ///< exclusive end (when has_end)
    bool has_end = false;  ///< false for the last shard (range-bounded)
    int order = 0;         ///< internal index order tag
    int prefix_len = 0;    ///< leading bound key components
    bool full_scan = false;  ///< nothing bound: whole-table scan shard
  };

  /// Splits the scan of `pattern` into at most `max_shards` disjoint
  /// shards whose union streams exactly the triples `ScanPattern` would,
  /// in the same global key order when shards are consumed by ascending
  /// `begin`. Returns an empty vector when nothing matches. Shards align
  /// to B+-tree leaves, so a short range yields fewer shards than
  /// requested. No cost is charged (catalog/boundary lookup only).
  std::vector<PatternShard> ShardPattern(const BoundPattern& pattern,
                                         int max_shards) const;

  /// Streams the triples of one shard to `fn`, charging the same
  /// per-tuple costs as `ScanPattern`. Each shard additionally charges
  /// one `kIndexProbe` for its own root-to-leaf descent, so a scan split
  /// into k shards costs k-1 extra probes versus the serial scan.
  Status ScanShard(const PatternShard& shard, const BoundPattern& pattern,
                   CostMeter* meter,
                   const std::function<bool(const rdf::Triple&)>& fn) const;

  /// Estimated number of triples matching `pattern` (no cost charged;
  /// estimation is a catalog lookup).
  uint64_t EstimateMatches(const BoundPattern& pattern) const;

  /// Statistics of one predicate's partition (zeros if absent).
  PredicateTableStats StatsOf(rdf::TermId predicate) const;

  /// Predicates present in the table, unordered.
  std::vector<rdf::TermId> Predicates() const;

  uint64_t size() const { return num_rows_; }
  uint64_t num_predicates() const { return stats_.size(); }

  /// Distinct subjects / objects across the whole table.
  uint64_t SubjectCount() const { return all_subjects_.size(); }
  uint64_t ObjectCount() const { return all_objects_.size(); }

 private:
  // Index key: a triple permuted into the index's component order.
  using Key = std::array<rdf::TermId, 3>;

  enum class Order { kSPO, kPOS, kOSP };

  static Key MakeKey(Order order, const rdf::Triple& t);
  static rdf::Triple KeyToTriple(Order order, const Key& k);

  /// Chooses the index order and the number of leading bound components
  /// for `pattern`. Returns nullopt if nothing is bound (full scan).
  static std::optional<std::pair<Order, int>> ChooseIndex(
      const BoundPattern& pattern);

  /// Shared scan loop of `ScanPattern` and `ScanShard`: walks keys from
  /// the first >= `lo` while the `prefix_len`-component prefix matches
  /// `lo` (and, when `end` is non-null, while key < `*end`), charging
  /// `tuple_op` per key (plus one `kIndexProbe` when `charge_probe`).
  Status RangeScan(Order order, const Key& lo, int prefix_len,
                   const Key* end, bool charge_probe, Op tuple_op,
                   const BoundPattern& pattern, CostMeter* meter,
                   const std::function<bool(const rdf::Triple&)>& fn) const;

  static bool Matches(const BoundPattern& p, const rdf::Triple& t) {
    return (!p.subject || *p.subject == t.subject) &&
           (!p.predicate || *p.predicate == t.predicate) &&
           (!p.object || *p.object == t.object);
  }

  BPlusTree<Key>* IndexFor(Order order) {
    switch (order) {
      case Order::kSPO: return &spo_;
      case Order::kPOS: return &pos_;
      case Order::kOSP: return &osp_;
    }
    return &spo_;
  }
  const BPlusTree<Key>* IndexFor(Order order) const {
    return const_cast<TripleTable*>(this)->IndexFor(order);
  }

  BPlusTree<Key> spo_;
  BPlusTree<Key> pos_;
  BPlusTree<Key> osp_;
  uint64_t num_rows_ = 0;

  /// Occurrence-counted term sets: `map[id]` is the number of stored
  /// triples using `id` in that position, so deletions can retire a term
  /// exactly when its last occurrence goes (a plain set cannot shrink).
  using TermCounts = std::unordered_map<rdf::TermId, uint64_t>;

  static void CountUp(TermCounts* counts, rdf::TermId id) { ++(*counts)[id]; }
  static void CountDown(TermCounts* counts, rdf::TermId id) {
    auto it = counts->find(id);
    if (it == counts->end()) return;
    if (--it->second == 0) counts->erase(it);
  }

  struct MutableStats {
    uint64_t num_triples = 0;
    TermCounts subjects;
    TermCounts objects;
  };
  std::unordered_map<rdf::TermId, MutableStats> stats_;
  TermCounts all_subjects_;
  TermCounts all_objects_;
};

}  // namespace dskg::relstore

#endif  // DSKG_RELSTORE_TRIPLE_TABLE_H_
