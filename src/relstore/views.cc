#include "relstore/views.h"

#include <algorithm>
#include <unordered_map>

#include "rdf/dictionary.h"

namespace dskg::relstore {

using sparql::BindingTable;
using sparql::PatternTerm;
using sparql::Query;
using sparql::TriplePattern;

namespace {

/// Canonical name assigner: the i-th distinct term seen becomes "n<i>".
/// Variables and subject/object constants share one renaming space (a
/// constant and the variable that generalizes it align to the same name).
class Renamer {
 public:
  const std::string& NameOf(const PatternTerm& t) {
    // Namespace-prefix the key so a variable ?x and a constant "x" do not
    // collide in the map, while both still canonicalize positionally.
    std::string key = (t.is_variable ? "?" : "c:") + t.text;
    auto it = names_.find(key);
    if (it == names_.end()) {
      it = names_.emplace(std::move(key), "n" + std::to_string(names_.size()))
               .first;
    }
    return it->second;
  }

 private:
  std::unordered_map<std::string, std::string> names_;
};

/// Generalizes a BGP: every subject/object constant becomes a fresh
/// variable (one per distinct constant text), predicates stay.
Query Generalize(const std::vector<TriplePattern>& patterns) {
  Query out;
  std::unordered_map<std::string, std::string> const_vars;
  auto generalize_term = [&](const PatternTerm& t) -> PatternTerm {
    if (t.is_variable) return t;
    auto it = const_vars.find(t.text);
    if (it == const_vars.end()) {
      it = const_vars
               .emplace(t.text, "_g" + std::to_string(const_vars.size()))
               .first;
    }
    return PatternTerm::Var(it->second);
  };
  for (const TriplePattern& p : patterns) {
    TriplePattern g;
    g.subject = generalize_term(p.subject);
    g.predicate = p.predicate;  // predicates are never generalized
    g.object = generalize_term(p.object);
    out.patterns.push_back(std::move(g));
  }
  // Project all variables (select_vars empty == SELECT *).
  return out;
}

}  // namespace

std::string BgpSignature(const std::vector<TriplePattern>& patterns) {
  Renamer renamer;
  std::string sig;
  for (const TriplePattern& p : patterns) {
    sig += renamer.NameOf(p.subject);
    sig += ' ';
    if (p.predicate.is_variable) {
      sig += renamer.NameOf(p.predicate);
    } else {
      sig += "P:";
      sig += p.predicate.text;
    }
    sig += ' ';
    sig += renamer.NameOf(p.object);
    sig += " . ";
  }
  return sig;
}

Status MaterializedViewManager::CreateView(const Query& subquery,
                                           CostMeter* meter) {
  const std::string sig = BgpSignature(subquery.patterns);
  if (views_.find(sig) != views_.end()) {
    return Status::AlreadyExists("view exists for signature: " + sig);
  }
  auto view = std::make_unique<MaterializedView>();
  view->signature = sig;
  view->definition = Generalize(subquery.patterns);

  Result<BindingTable> data = executor_->Execute(view->definition, meter);
  if (!data.ok()) return data.status();
  view->data = std::move(data).ValueOrDie();

  if (budget_rows_ > 0 && used_rows_ + view->data.NumRows() > budget_rows_) {
    return Status::CapacityExceeded(
        "view of " + std::to_string(view->data.NumRows()) +
        " rows exceeds remaining budget of " +
        std::to_string(budget_rows_ - used_rows_) + " rows");
  }
  meter->Add(Op::kTempTableTuple, view->data.NumRows());
  used_rows_ += view->data.NumRows();
  views_.emplace(sig, std::move(view));
  catalog_version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

Status MaterializedViewManager::DropView(const std::string& signature) {
  auto it = views_.find(signature);
  if (it == views_.end()) {
    return Status::NotFound("no view with signature: " + signature);
  }
  RemoveView(it);
  catalog_version_.fetch_add(1, std::memory_order_release);
  return Status::OK();
}

void MaterializedViewManager::Clear() {
  if (views_.empty()) return;
  for (auto it = views_.begin(); it != views_.end();) it = RemoveView(it);
  catalog_version_.fetch_add(1, std::memory_order_release);
}

size_t MaterializedViewManager::InvalidatePredicates(
    const std::unordered_set<rdf::TermId>& predicates) {
  size_t dropped = 0;
  for (auto it = views_.begin(); it != views_.end();) {
    bool stale = false;
    for (const TriplePattern& p : it->second->definition.patterns) {
      if (p.predicate.is_variable) {
        // A variable-predicate view matches every partition: any batch
        // can change its rows, so it is stale by construction.
        stale = true;
        break;
      }
      const rdf::TermId id = dict_->Lookup(p.predicate.text);
      if (id != rdf::kInvalidTermId && predicates.count(id) > 0) {
        stale = true;
        break;
      }
    }
    if (stale) {
      it = RemoveView(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped > 0) catalog_version_.fetch_add(1, std::memory_order_release);
  return dropped;
}

std::map<std::string, std::unique_ptr<MaterializedView>>::iterator
MaterializedViewManager::RemoveView(
    std::map<std::string, std::unique_ptr<MaterializedView>>::iterator it) {
  used_rows_ -= it->second->data.NumRows();
  if (deferred_) {
    // A published snapshot may still answer from this view: keep the
    // object alive until the post-drain CollectRetired.
    retired_.push_back(std::move(it->second));
  }
  return views_.erase(it);
}

const MaterializedView* MaterializedViewManager::FindView(
    const std::string& signature) const {
  if (const Snapshot* snap = CurrentSnapshot()) {
    const auto it = std::lower_bound(
        snap->views.begin(), snap->views.end(), signature,
        [](const auto& entry, const std::string& s) {
          return entry.first < s;
        });
    if (it == snap->views.end() || it->first != signature) return nullptr;
    return it->second;
  }
  const auto it = views_.find(signature);
  return it == views_.end() ? nullptr : it->second.get();
}

uint64_t MaterializedViewManager::used_rows() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->used_rows;
  return used_rows_;
}

size_t MaterializedViewManager::num_views() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->views.size();
  return views_.size();
}

uint64_t MaterializedViewManager::catalog_version() const {
  if (const Snapshot* snap = CurrentSnapshot()) return snap->catalog_version;
  return catalog_version_.load(std::memory_order_acquire);
}

std::vector<std::string> MaterializedViewManager::Signatures() const {
  std::vector<std::string> out;
  if (const Snapshot* snap = CurrentSnapshot()) {
    out.reserve(snap->views.size());
    for (const auto& [sig, _] : snap->views) out.push_back(sig);
    return out;  // snapshot is already sorted by signature
  }
  out.reserve(views_.size());
  for (const auto& [sig, _] : views_) out.push_back(sig);
  return out;
}

MaterializedViewManager::Snapshot MaterializedViewManager::MakeSnapshot()
    const {
  Snapshot snap;
  snap.owner = this;
  snap.views.reserve(views_.size());
  for (const auto& [sig, view] : views_) {
    snap.views.emplace_back(sig, view.get());
  }
  snap.used_rows = used_rows_;
  snap.catalog_version = catalog_version_.load(std::memory_order_acquire);
  return snap;
}

bool MaterializedViewManager::HasViewFor(
    const std::vector<TriplePattern>& patterns) const {
  return FindView(BgpSignature(patterns)) != nullptr;
}

std::optional<MaterializedViewManager::Answer>
MaterializedViewManager::TryAnswer(const std::vector<TriplePattern>& patterns,
                                   CostMeter* meter) const {
  const MaterializedView* found = FindView(BgpSignature(patterns));
  if (found == nullptr) return std::nullopt;
  const MaterializedView& view = *found;
  meter->Add(Op::kViewLookup);

  // Positionally align the query's terms with the view definition's
  // variables (signature equality guarantees structural alignment).
  // View column -> query variable name, or view column -> constant filter.
  std::unordered_map<std::string, std::string> col_to_var;
  std::unordered_map<std::string, rdf::TermId> col_filter;
  bool impossible = false;
  for (size_t i = 0; i < patterns.size(); ++i) {
    auto align = [&](const PatternTerm& q_term, const PatternTerm& v_term) {
      if (!v_term.is_variable) return;  // shared constant; nothing to bind
      if (q_term.is_variable) {
        col_to_var[v_term.text] = q_term.text;
      } else {
        const rdf::TermId id = dict_->Lookup(q_term.text);
        if (id == rdf::kInvalidTermId) {
          impossible = true;  // constant unknown => no rows can match
        } else {
          col_filter[v_term.text] = id;
        }
      }
    };
    align(patterns[i].subject, view.definition.patterns[i].subject);
    align(patterns[i].object, view.definition.patterns[i].object);
  }

  // Output columns: the query's variables, in view-column order.
  Answer ans;
  std::vector<int> keep_cols;
  std::vector<int> filter_cols;
  std::vector<rdf::TermId> filter_vals;
  for (size_t c = 0; c < view.data.columns.size(); ++c) {
    const std::string& col = view.data.columns[c];
    auto var_it = col_to_var.find(col);
    if (var_it != col_to_var.end()) {
      ans.bindings.columns.push_back(var_it->second);
      keep_cols.push_back(static_cast<int>(c));
    }
    auto f_it = col_filter.find(col);
    if (f_it != col_filter.end()) {
      filter_cols.push_back(static_cast<int>(c));
      filter_vals.push_back(f_it->second);
    }
  }
  if (impossible) return ans;  // header only, no rows

  // Columnar scan: filter and project with the column indexes resolved
  // above — each surviving row is one flat-buffer append.
  for (size_t r = 0; r < view.data.NumRows(); ++r) {
    const rdf::TermId* row = view.data.RowData(r);
    meter->Add(Op::kViewScanTuple);
    bool pass = true;
    for (size_t f = 0; f < filter_cols.size(); ++f) {
      if (row[static_cast<size_t>(filter_cols[f])] != filter_vals[f]) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    rdf::TermId* out_row = ans.bindings.AppendRow();
    for (size_t c = 0; c < keep_cols.size(); ++c) {
      out_row[c] = row[static_cast<size_t>(keep_cols[c])];
    }
  }
  return ans;
}

}  // namespace dskg::relstore
