#include "relstore/executor.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>

namespace dskg::relstore {

using rdf::TermId;
using rdf::Triple;
using sparql::BindingTable;

namespace {

/// One triple-pattern position after dictionary encoding.
struct Slot {
  bool is_variable = false;
  std::string var;          // when is_variable
  TermId constant = rdf::kInvalidTermId;  // when !is_variable
  bool missing_constant = false;  // constant not in the dictionary
};

Slot EncodeSlot(const sparql::PatternTerm& t, const rdf::Dictionary& dict) {
  Slot s;
  if (t.is_variable) {
    s.is_variable = true;
    s.var = t.text;
    return s;
  }
  s.constant = dict.Lookup(t.text);
  s.missing_constant = (s.constant == rdf::kInvalidTermId);
  return s;
}

}  // namespace

/// A fully encoded pattern plus plan-time metadata.
struct Executor::EncodedPattern {
  Slot slots[3];  // subject, predicate, object
  bool used = false;

  bool HasMissingConstant() const {
    return slots[0].missing_constant || slots[1].missing_constant ||
           slots[2].missing_constant;
  }

  /// Pattern with only its constants bound (the scan extent).
  BoundPattern ConstantExtent() const {
    BoundPattern b;
    if (!slots[0].is_variable) b.subject = slots[0].constant;
    if (!slots[1].is_variable) b.predicate = slots[1].constant;
    if (!slots[2].is_variable) b.object = slots[2].constant;
    return b;
  }

  /// Distinct variables of the pattern, in position order.
  std::vector<std::string> Vars() const {
    std::vector<std::string> out;
    for (const Slot& s : slots) {
      if (s.is_variable &&
          std::find(out.begin(), out.end(), s.var) == out.end()) {
        out.push_back(s.var);
      }
    }
    return out;
  }

  /// Checks within-pattern consistency for repeated variables and returns
  /// the binding of each distinct variable for triple `t`.
  bool ExtractBindings(const Triple& t,
                       std::unordered_map<std::string, TermId>* out) const {
    const TermId vals[3] = {t.subject, t.predicate, t.object};
    out->clear();
    for (int i = 0; i < 3; ++i) {
      if (!slots[i].is_variable) continue;
      auto [it, inserted] = out->emplace(slots[i].var, vals[i]);
      if (!inserted && it->second != vals[i]) return false;
    }
    return true;
  }
};

namespace {

double JoinVarSelectivity(const TripleTable& table, TermId predicate,
                          bool subject_bound, bool object_bound) {
  PredicateTableStats st = table.StatsOf(predicate);
  double est = static_cast<double>(st.num_triples);
  if (subject_bound) {
    est /= std::max<uint64_t>(1, st.num_distinct_subjects);
  }
  if (object_bound) {
    est /= std::max<uint64_t>(1, st.num_distinct_objects);
  }
  return std::max(1.0, est);
}

/// Estimated matches for a pattern when, in addition to its constants, the
/// variable positions in `bound_vars` are bound (to values unknown at plan
/// time). Mirrors TripleTable::EstimateMatches but works on masks.
uint64_t EstimateWithBoundVars(
    const TripleTable& table, const Executor::EncodedPattern& p,
    const std::unordered_set<std::string>& bound_vars) {
  const Slot& s = p.slots[0];
  const Slot& pr = p.slots[1];
  const Slot& o = p.slots[2];
  const bool s_bound = !s.is_variable || bound_vars.count(s.var) > 0;
  const bool o_bound = !o.is_variable || bound_vars.count(o.var) > 0;
  if (!pr.is_variable) {
    return static_cast<uint64_t>(
        JoinVarSelectivity(table, pr.constant, s_bound, o_bound));
  }
  // Variable predicate: uniform assumption over the whole table.
  double est = static_cast<double>(table.size());
  if (s_bound) est /= std::max<uint64_t>(1, table.SubjectCount());
  if (o_bound) est /= std::max<uint64_t>(1, table.ObjectCount());
  return static_cast<uint64_t>(std::max(1.0, est));
}

}  // namespace

Result<BindingTable> Executor::Execute(const sparql::Query& query,
                                       CostMeter* meter) const {
  return Run(query, nullptr, meter);
}

Result<BindingTable> Executor::ExecuteWithSeed(const sparql::Query& query,
                                               const BindingTable& seed,
                                               CostMeter* meter) const {
  return Run(query, &seed, meter);
}

Result<BindingTable> Executor::Run(const sparql::Query& query,
                                   const BindingTable* seed,
                                   CostMeter* meter) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  // ---- encode -----------------------------------------------------------
  std::vector<EncodedPattern> patterns(query.patterns.size());
  bool impossible = false;
  for (size_t i = 0; i < query.patterns.size(); ++i) {
    patterns[i].slots[0] = EncodeSlot(query.patterns[i].subject, *dict_);
    patterns[i].slots[1] = EncodeSlot(query.patterns[i].predicate, *dict_);
    patterns[i].slots[2] = EncodeSlot(query.patterns[i].object, *dict_);
    if (patterns[i].HasMissingConstant()) impossible = true;
  }

  const std::vector<std::string> out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;

  if (impossible) {
    // A constant that is not in the dictionary matches nothing.
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }

  const CostModel& model = *meter->model();

  // ---- initial relation -------------------------------------------------
  BindingTable cur;
  std::unordered_set<std::string> bound;
  size_t num_joined = 0;

  if (seed != nullptr) {
    cur = *seed;
    for (const std::string& c : cur.columns) bound.insert(c);
    // Reading the seed out of the temporary table space.
    meter->Add(Op::kSeqScanTuple, cur.rows.size());
  } else {
    // Start from the pattern with the smallest estimated extent.
    size_t best = 0;
    uint64_t best_est = std::numeric_limits<uint64_t>::max();
    for (size_t i = 0; i < patterns.size(); ++i) {
      const uint64_t est = table_->EstimateMatches(
          patterns[i].ConstantExtent());
      if (est < best_est) {
        best_est = est;
        best = i;
      }
    }
    EncodedPattern& p = patterns[best];
    p.used = true;
    ++num_joined;
    cur.columns = p.Vars();
    for (const std::string& v : cur.columns) bound.insert(v);
    std::unordered_map<std::string, TermId> binds;
    Status scan = table_->ScanPattern(
        p.ConstantExtent(), meter, [&](const Triple& t) {
          if (!p.ExtractBindings(t, &binds)) return true;
          std::vector<TermId> row;
          row.reserve(cur.columns.size());
          for (const std::string& v : cur.columns) row.push_back(binds[v]);
          meter->Add(Op::kMaterializeTuple);
          cur.rows.push_back(std::move(row));
          return !meter->ExceededBudget();
        });
    DSKG_RETURN_NOT_OK(scan);
    if (meter->ExceededBudget()) {
      return Status::Cancelled("relational execution exceeded cost budget");
    }
  }

  // ---- join remaining patterns, greedily --------------------------------
  while (num_joined < patterns.size()) {
    // Prefer connected patterns (sharing a bound variable); among those,
    // the one with the smallest estimate given its join vars are bound.
    size_t best = patterns.size();
    uint64_t best_est = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].used) continue;
      bool connected = false;
      for (const std::string& v : patterns[i].Vars()) {
        if (bound.count(v) > 0) {
          connected = true;
          break;
        }
      }
      const uint64_t est = EstimateWithBoundVars(*table_, patterns[i],
                                                 connected ? bound
                                                           : decltype(bound){});
      if (best == patterns.size() || (connected && !best_connected) ||
          (connected == best_connected && est < best_est)) {
        best = i;
        best_est = est;
        best_connected = connected;
      }
    }
    EncodedPattern& p = patterns[best];
    p.used = true;
    ++num_joined;

    // Join variables and new variables of this step.
    std::vector<std::string> join_vars;
    std::vector<std::string> new_vars;
    for (const std::string& v : p.Vars()) {
      if (bound.count(v) > 0) {
        join_vars.push_back(v);
      } else {
        new_vars.push_back(v);
      }
    }

    // ---- operator choice (deterministic cost-based) ----
    const double rows_out = static_cast<double>(cur.rows.size());
    const uint64_t per_row_est = EstimateWithBoundVars(*table_, p, bound);
    const uint64_t extent_est =
        table_->EstimateMatches(p.ConstantExtent());
    const double cost_inlj =
        rows_out * (model.weight(Op::kIndexProbe) +
                    static_cast<double>(per_row_est) *
                        model.weight(Op::kIndexScanTuple));
    const double cost_hash =
        static_cast<double>(extent_est) *
            (model.weight(Op::kIndexScanTuple) +
             model.weight(Op::kHashBuildTuple)) +
        rows_out * model.weight(Op::kHashProbeTuple);
    const bool use_hash = !join_vars.empty() && cost_hash < cost_inlj;

    BindingTable next;
    next.columns = cur.columns;
    for (const std::string& v : new_vars) next.columns.push_back(v);

    auto emit = [&](const std::vector<TermId>& base,
                    const std::unordered_map<std::string, TermId>& binds) {
      std::vector<TermId> row = base;
      for (const std::string& v : new_vars) row.push_back(binds.at(v));
      meter->Add(Op::kJoinOutputTuple);
      meter->Add(Op::kMaterializeTuple);
      next.rows.push_back(std::move(row));
    };

    if (use_hash) {
      // ---- hash join: scan extent once, probe with outer rows ----
      std::vector<int> join_cols;
      join_cols.reserve(join_vars.size());
      for (const std::string& v : join_vars) {
        join_cols.push_back(cur.ColumnIndex(v));
      }
      struct HashedMatch {
        std::vector<TermId> key;
        std::unordered_map<std::string, TermId> binds;
      };
      std::unordered_map<std::string, std::vector<HashedMatch>> ht;
      auto key_str = [](const std::vector<TermId>& key) {
        std::string k;
        k.reserve(key.size() * sizeof(TermId));
        for (TermId v : key) {
          k.append(reinterpret_cast<const char*>(&v), sizeof(TermId));
        }
        return k;
      };
      std::unordered_map<std::string, TermId> binds;
      Status scan = table_->ScanPattern(
          p.ConstantExtent(), meter, [&](const Triple& t) {
            if (!p.ExtractBindings(t, &binds)) return true;
            HashedMatch m;
            for (const std::string& v : join_vars) {
              m.key.push_back(binds.at(v));
            }
            m.binds = binds;
            meter->Add(Op::kHashBuildTuple);
            ht[key_str(m.key)].push_back(std::move(m));
            return !meter->ExceededBudget();
          });
      DSKG_RETURN_NOT_OK(scan);
      for (const auto& row : cur.rows) {
        std::vector<TermId> key;
        key.reserve(join_cols.size());
        for (int c : join_cols) key.push_back(row[static_cast<size_t>(c)]);
        meter->Add(Op::kHashProbeTuple);
        auto it = ht.find(key_str(key));
        if (it == ht.end()) continue;
        for (const HashedMatch& m : it->second) emit(row, m.binds);
        if (meter->ExceededBudget()) {
          return Status::Cancelled(
              "relational execution exceeded cost budget");
        }
      }
    } else {
      // ---- index nested-loop join (also covers cartesian steps) ----
      for (const auto& row : cur.rows) {
        BoundPattern bp = p.ConstantExtent();
        // Substitute join-variable values from the outer row.
        auto bind_slot = [&](const Slot& slot,
                             std::optional<TermId>* target) {
          if (!slot.is_variable) return;
          const int c = cur.ColumnIndex(slot.var);
          if (c >= 0) *target = row[static_cast<size_t>(c)];
        };
        bind_slot(p.slots[0], &bp.subject);
        bind_slot(p.slots[1], &bp.predicate);
        bind_slot(p.slots[2], &bp.object);
        std::unordered_map<std::string, TermId> binds;
        Status scan = table_->ScanPattern(bp, meter, [&](const Triple& t) {
          if (!p.ExtractBindings(t, &binds)) return true;
          emit(row, binds);
          return !meter->ExceededBudget();
        });
        DSKG_RETURN_NOT_OK(scan);
        if (meter->ExceededBudget()) {
          return Status::Cancelled(
              "relational execution exceeded cost budget");
        }
      }
    }

    cur = std::move(next);
    for (const std::string& v : new_vars) bound.insert(v);
    if (cur.rows.empty()) break;  // no results; remaining joins are no-ops
  }

  // ---- projection --------------------------------------------------------
  BindingTable out = cur.Project(out_vars);
  // Projected-away columns may leave missing columns if joins were cut
  // short by an empty intermediate; normalize the header.
  if (out.columns.size() != out_vars.size()) {
    BindingTable normalized;
    normalized.columns = out_vars;
    if (!cur.rows.empty()) {
      return Status::Internal("projection lost columns unexpectedly");
    }
    return normalized;
  }
  return out;
}

}  // namespace dskg::relstore
