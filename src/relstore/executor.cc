#include "relstore/executor.h"

#include <algorithm>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace dskg::relstore {

using rdf::TermId;
using rdf::Triple;
using sparql::BindingTable;

namespace {

/// One triple-pattern position after dictionary encoding.
struct Slot {
  bool is_variable = false;
  std::string var;          // when is_variable
  TermId constant = rdf::kInvalidTermId;  // when !is_variable
  bool missing_constant = false;  // constant not in the dictionary
};

Slot EncodeSlot(const sparql::PatternTerm& t, const rdf::Dictionary& dict) {
  Slot s;
  if (t.is_variable) {
    s.is_variable = true;
    s.var = t.text;
    return s;
  }
  s.constant = dict.Lookup(t.text);
  s.missing_constant = (s.constant == rdf::kInvalidTermId);
  return s;
}

}  // namespace

/// A fully encoded pattern plus plan-time metadata.
struct Executor::EncodedPattern {
  Slot slots[3];  // subject, predicate, object
  bool used = false;

  bool HasMissingConstant() const {
    return slots[0].missing_constant || slots[1].missing_constant ||
           slots[2].missing_constant;
  }

  /// Pattern with only its constants bound (the scan extent).
  BoundPattern ConstantExtent() const {
    BoundPattern b;
    if (!slots[0].is_variable) b.subject = slots[0].constant;
    if (!slots[1].is_variable) b.predicate = slots[1].constant;
    if (!slots[2].is_variable) b.object = slots[2].constant;
    return b;
  }

  /// Distinct variables of the pattern, in position order.
  std::vector<std::string> Vars() const {
    std::vector<std::string> out;
    for (const Slot& s : slots) {
      if (s.is_variable &&
          std::find(out.begin(), out.end(), s.var) == out.end()) {
        out.push_back(s.var);
      }
    }
    return out;
  }

  /// Checks within-pattern consistency for repeated variables and returns
  /// the binding of each distinct variable for triple `t`.
  bool ExtractBindings(const Triple& t,
                       std::unordered_map<std::string, TermId>* out) const {
    const TermId vals[3] = {t.subject, t.predicate, t.object};
    out->clear();
    for (int i = 0; i < 3; ++i) {
      if (!slots[i].is_variable) continue;
      auto [it, inserted] = out->emplace(slots[i].var, vals[i]);
      if (!inserted && it->second != vals[i]) return false;
    }
    return true;
  }
};

namespace {

double JoinVarSelectivity(const TripleTable& table, TermId predicate,
                          bool subject_bound, bool object_bound) {
  PredicateTableStats st = table.StatsOf(predicate);
  double est = static_cast<double>(st.num_triples);
  if (subject_bound) {
    est /= std::max<uint64_t>(1, st.num_distinct_subjects);
  }
  if (object_bound) {
    est /= std::max<uint64_t>(1, st.num_distinct_objects);
  }
  return std::max(1.0, est);
}

/// Estimated matches for a pattern when, in addition to its constants, the
/// variable positions in `bound_vars` are bound (to values unknown at plan
/// time). Mirrors TripleTable::EstimateMatches but works on masks.
uint64_t EstimateWithBoundVars(
    const TripleTable& table, const Executor::EncodedPattern& p,
    const std::unordered_set<std::string>& bound_vars) {
  const Slot& s = p.slots[0];
  const Slot& pr = p.slots[1];
  const Slot& o = p.slots[2];
  const bool s_bound = !s.is_variable || bound_vars.count(s.var) > 0;
  const bool o_bound = !o.is_variable || bound_vars.count(o.var) > 0;
  if (!pr.is_variable) {
    return static_cast<uint64_t>(
        JoinVarSelectivity(table, pr.constant, s_bound, o_bound));
  }
  // Variable predicate: uniform assumption over the whole table.
  double est = static_cast<double>(table.size());
  if (s_bound) est /= std::max<uint64_t>(1, table.SubjectCount());
  if (o_bound) est /= std::max<uint64_t>(1, table.ObjectCount());
  return static_cast<uint64_t>(std::max(1.0, est));
}

/// The dictionary-encoded form of a query, shared by the serial and
/// sharded paths so they can never plan from different encodings.
struct EncodedQuery {
  std::vector<Executor::EncodedPattern> patterns;
  std::vector<std::string> out_vars;
  bool impossible = false;  // a constant is absent from the dictionary
};

EncodedQuery EncodeQuery(const sparql::Query& query,
                         const rdf::Dictionary& dict) {
  EncodedQuery out;
  out.patterns.resize(query.patterns.size());
  for (size_t i = 0; i < query.patterns.size(); ++i) {
    out.patterns[i].slots[0] = EncodeSlot(query.patterns[i].subject, dict);
    out.patterns[i].slots[1] = EncodeSlot(query.patterns[i].predicate, dict);
    out.patterns[i].slots[2] = EncodeSlot(query.patterns[i].object, dict);
    if (out.patterns[i].HasMissingConstant()) out.impossible = true;
  }
  out.out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;
  return out;
}

/// Index of the pattern with the smallest estimated constant extent —
/// the serial and sharded paths' common choice of initial pattern.
size_t SmallestExtentPattern(
    const TripleTable& table,
    const std::vector<Executor::EncodedPattern>& patterns) {
  size_t best = 0;
  uint64_t best_est = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < patterns.size(); ++i) {
    const uint64_t est = table.EstimateMatches(patterns[i].ConstantExtent());
    if (est < best_est) {
      best_est = est;
      best = i;
    }
  }
  return best;
}

/// Scan callback materializing each matching triple of `p` as a row of
/// `cur` (one `kMaterializeTuple` each). Shared by the serial initial
/// scan and every shard worker, so their per-row charging is structural,
/// not kept in sync by hand. Stops the scan once `meter`'s budget is
/// exhausted (never the case for shard-local meters, which carry none).
std::function<bool(const Triple&)> MaterializeInto(
    const Executor::EncodedPattern& p, BindingTable* cur, CostMeter* meter) {
  return [&p, cur, meter,
          binds = std::unordered_map<std::string, TermId>{}](
             const Triple& t) mutable {
    if (!p.ExtractBindings(t, &binds)) return true;
    std::vector<TermId> row;
    row.reserve(cur->columns.size());
    for (const std::string& v : cur->columns) row.push_back(binds[v]);
    meter->Add(Op::kMaterializeTuple);
    cur->rows.push_back(std::move(row));
    return !meter->ExceededBudget();
  };
}

/// One hash join's build side: key bytes -> binding sets of the matching
/// extent triples. Read-only once built.
using JoinHashTable =
    std::unordered_map<std::string,
                       std::vector<std::unordered_map<std::string, TermId>>>;

/// Serializes a join key (TermId tuple) into map-key bytes.
std::string JoinKeyBytes(const std::vector<TermId>& key) {
  std::string k;
  k.reserve(key.size() * sizeof(TermId));
  for (TermId v : key) {
    k.append(reinterpret_cast<const char*>(&v), sizeof(TermId));
  }
  return k;
}

}  // namespace

/// Per-query shared hash-join builds (see executor.h). Entries are keyed
/// by pattern index in an ordered map so the caller can fold the build
/// meters into the query meter in a deterministic order.
struct Executor::SharedJoinState {
  struct Entry {
    std::mutex mu;
    bool built = false;
    Status status;
    JoinHashTable table;
    CostMeter build_meter;
  };

  Entry* EntryFor(size_t pattern_index) {
    std::lock_guard<std::mutex> lock(mu);
    return &entries[pattern_index];
  }

  std::mutex mu;
  std::map<size_t, Entry> entries;
};

Result<BindingTable> Executor::Execute(const sparql::Query& query,
                                       CostMeter* meter) const {
  return Run(query, nullptr, meter);
}

Result<BindingTable> Executor::ExecuteWithSeed(const sparql::Query& query,
                                               const BindingTable& seed,
                                               CostMeter* meter) const {
  return Run(query, &seed, meter);
}

Result<BindingTable> Executor::ExecuteSharded(const sparql::Query& query,
                                              CostMeter* meter,
                                              ThreadPool* pool,
                                              int max_shards) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }
  if (pool == nullptr) return Run(query, nullptr, meter);
  if (max_shards <= 0) max_shards = static_cast<int>(pool->size());
  // Budgeted runs use cooperative cancellation, a serial protocol.
  if (max_shards <= 1 || meter->budget_micros() > 0.0) {
    return Run(query, nullptr, meter);
  }

  // ---- encode and plan (exactly as the serial path does) ----------------
  EncodedQuery eq = EncodeQuery(query, *dict_);
  std::vector<EncodedPattern>& patterns = eq.patterns;
  const std::vector<std::string>& out_vars = eq.out_vars;
  if (eq.impossible) {
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }
  const size_t first = SmallestExtentPattern(*table_, patterns);
  const std::vector<TripleTable::PatternShard> shards =
      table_->ShardPattern(patterns[first].ConstantExtent(), max_shards);
  if (shards.size() <= 1) {
    // Nothing matches or the range fits one leaf run: serial is both
    // correct and cheapest (no extra descents).
    return Run(query, nullptr, meter);
  }
  patterns[first].used = true;

  // ---- run every shard's scan + remaining joins concurrently ------------
  struct ShardOutcome {
    Status status;
    BindingTable table;
    CostMeter meter;
  };
  SharedJoinState shared_joins;  // hash builds: once per pattern, not per shard
  std::vector<ShardOutcome> outcomes(shards.size());
  pool->ParallelFor(shards.size(), [&](size_t i) {
    ShardOutcome& out = outcomes[i];
    out.meter = CostMeter(meter->model(), meter->throttle());
    std::vector<EncodedPattern> local = patterns;  // own used-flags
    const EncodedPattern& p = local[first];
    BindingTable cur;
    cur.columns = p.Vars();
    std::unordered_set<std::string> bound(cur.columns.begin(),
                                          cur.columns.end());
    out.status = table_->ScanShard(shards[i], p.ConstantExtent(), &out.meter,
                                   MaterializeInto(p, &cur, &out.meter));
    if (!out.status.ok()) return;
    out.status = JoinRemaining(&local, &cur, &bound, 1, &out.meter,
                               &shared_joins);
    if (!out.status.ok()) return;
    out.table = cur.Project(out_vars);
  });

  // ---- merge in ascending shard order (deterministic) -------------------
  // Shared hash builds first, in pattern order: each was charged exactly
  // once however many shards probed it.
  for (auto& [idx, entry] : shared_joins.entries) {
    (void)idx;
    DSKG_RETURN_NOT_OK(entry.status);
    meter->Merge(entry.build_meter);
  }
  BindingTable merged;
  merged.columns = out_vars;
  for (ShardOutcome& out : outcomes) {
    DSKG_RETURN_NOT_OK(out.status);
    meter->Merge(out.meter);
    if (out.table.columns.size() != out_vars.size()) {
      if (!out.table.rows.empty()) {
        return Status::Internal("projection lost columns unexpectedly");
      }
      continue;  // empty shard cut short by an empty intermediate
    }
    merged.rows.reserve(merged.rows.size() + out.table.rows.size());
    for (auto& row : out.table.rows) merged.rows.push_back(std::move(row));
  }
  return merged;
}

Result<BindingTable> Executor::Run(const sparql::Query& query,
                                   const BindingTable* seed,
                                   CostMeter* meter) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  // ---- encode -----------------------------------------------------------
  EncodedQuery eq = EncodeQuery(query, *dict_);
  std::vector<EncodedPattern>& patterns = eq.patterns;
  const std::vector<std::string>& out_vars = eq.out_vars;

  if (eq.impossible) {
    // A constant that is not in the dictionary matches nothing.
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }

  // ---- initial relation -------------------------------------------------
  BindingTable cur;
  std::unordered_set<std::string> bound;
  size_t num_joined = 0;

  if (seed != nullptr) {
    cur = *seed;
    for (const std::string& c : cur.columns) bound.insert(c);
    // Reading the seed out of the temporary table space.
    meter->Add(Op::kSeqScanTuple, cur.rows.size());
  } else {
    // Start from the pattern with the smallest estimated extent.
    EncodedPattern& p = patterns[SmallestExtentPattern(*table_, patterns)];
    p.used = true;
    ++num_joined;
    cur.columns = p.Vars();
    for (const std::string& v : cur.columns) bound.insert(v);
    Status scan = table_->ScanPattern(p.ConstantExtent(), meter,
                                      MaterializeInto(p, &cur, meter));
    DSKG_RETURN_NOT_OK(scan);
    if (meter->ExceededBudget()) {
      return Status::Cancelled("relational execution exceeded cost budget");
    }
  }

  DSKG_RETURN_NOT_OK(JoinRemaining(&patterns, &cur, &bound, num_joined,
                                   meter));

  // ---- projection --------------------------------------------------------
  BindingTable out = cur.Project(out_vars);
  // Projected-away columns may leave missing columns if joins were cut
  // short by an empty intermediate; normalize the header.
  if (out.columns.size() != out_vars.size()) {
    BindingTable normalized;
    normalized.columns = out_vars;
    if (!cur.rows.empty()) {
      return Status::Internal("projection lost columns unexpectedly");
    }
    return normalized;
  }
  return out;
}

Status Executor::JoinRemaining(std::vector<EncodedPattern>* patterns_ptr,
                               BindingTable* cur_ptr,
                               std::unordered_set<std::string>* bound_ptr,
                               size_t num_joined, CostMeter* meter,
                               SharedJoinState* shared) const {
  std::vector<EncodedPattern>& patterns = *patterns_ptr;
  BindingTable& cur = *cur_ptr;
  std::unordered_set<std::string>& bound = *bound_ptr;
  const CostModel& model = *meter->model();

  // ---- join remaining patterns, greedily --------------------------------
  while (num_joined < patterns.size()) {
    // Prefer connected patterns (sharing a bound variable); among those,
    // the one with the smallest estimate given its join vars are bound.
    size_t best = patterns.size();
    uint64_t best_est = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].used) continue;
      bool connected = false;
      for (const std::string& v : patterns[i].Vars()) {
        if (bound.count(v) > 0) {
          connected = true;
          break;
        }
      }
      static const std::unordered_set<std::string> kNoBound;
      const uint64_t est = EstimateWithBoundVars(*table_, patterns[i],
                                                 connected ? bound : kNoBound);
      if (best == patterns.size() || (connected && !best_connected) ||
          (connected == best_connected && est < best_est)) {
        best = i;
        best_est = est;
        best_connected = connected;
      }
    }
    EncodedPattern& p = patterns[best];
    p.used = true;
    ++num_joined;

    // Join variables and new variables of this step.
    std::vector<std::string> join_vars;
    std::vector<std::string> new_vars;
    for (const std::string& v : p.Vars()) {
      if (bound.count(v) > 0) {
        join_vars.push_back(v);
      } else {
        new_vars.push_back(v);
      }
    }

    // ---- operator choice (deterministic cost-based) ----
    const double rows_out = static_cast<double>(cur.rows.size());
    const uint64_t per_row_est = EstimateWithBoundVars(*table_, p, bound);
    const uint64_t extent_est =
        table_->EstimateMatches(p.ConstantExtent());
    const double cost_inlj =
        rows_out * (model.weight(Op::kIndexProbe) +
                    static_cast<double>(per_row_est) *
                        model.weight(Op::kIndexScanTuple));
    const double cost_hash =
        static_cast<double>(extent_est) *
            (model.weight(Op::kIndexScanTuple) +
             model.weight(Op::kHashBuildTuple)) +
        rows_out * model.weight(Op::kHashProbeTuple);
    const bool use_hash = !join_vars.empty() && cost_hash < cost_inlj;

    BindingTable next;
    next.columns = cur.columns;
    for (const std::string& v : new_vars) next.columns.push_back(v);

    auto emit = [&](const std::vector<TermId>& base,
                    const std::unordered_map<std::string, TermId>& binds) {
      std::vector<TermId> row = base;
      for (const std::string& v : new_vars) row.push_back(binds.at(v));
      meter->Add(Op::kJoinOutputTuple);
      meter->Add(Op::kMaterializeTuple);
      next.rows.push_back(std::move(row));
    };

    if (use_hash) {
      // ---- hash join: scan the extent once, probe with outer rows ----
      std::vector<int> join_cols;
      join_cols.reserve(join_vars.size());
      for (const std::string& v : join_vars) {
        join_cols.push_back(cur.ColumnIndex(v));
      }
      // The build side depends only on the pattern's constant extent, so
      // `build` is the same work whoever runs it. Serial path: build
      // locally, charging `meter`. Sharded path: the first shard choosing
      // a hash join on this pattern builds into the shared entry (cost on
      // the entry's meter, folded in once by ExecuteSharded); everyone
      // else reuses the table read-only, eliminating the per-shard
      // duplicate extent scans + kHashBuildTuple charges.
      auto build = [&](JoinHashTable* ht, CostMeter* build_meter) -> Status {
        std::unordered_map<std::string, TermId> binds;
        std::vector<TermId> key;
        return table_->ScanPattern(
            p.ConstantExtent(), build_meter, [&](const Triple& t) {
              if (!p.ExtractBindings(t, &binds)) return true;
              key.clear();
              for (const std::string& v : join_vars) {
                key.push_back(binds.at(v));
              }
              build_meter->Add(Op::kHashBuildTuple);
              (*ht)[JoinKeyBytes(key)].push_back(binds);
              return !build_meter->ExceededBudget();
            });
      };
      const JoinHashTable* ht = nullptr;
      JoinHashTable local_ht;
      if (shared != nullptr) {
        SharedJoinState::Entry* entry = shared->EntryFor(best);
        {
          std::lock_guard<std::mutex> lock(entry->mu);
          if (!entry->built) {
            // Inherit the query's cost model and throttle (every shard
            // meter carries the same ones), not CostMeter's defaults.
            entry->build_meter = CostMeter(meter->model(), meter->throttle());
            entry->status = build(&entry->table, &entry->build_meter);
            entry->built = true;
          }
        }
        DSKG_RETURN_NOT_OK(entry->status);
        ht = &entry->table;
      } else {
        DSKG_RETURN_NOT_OK(build(&local_ht, meter));
        ht = &local_ht;
      }
      std::vector<TermId> key;
      for (const auto& row : cur.rows) {
        key.clear();
        for (int c : join_cols) key.push_back(row[static_cast<size_t>(c)]);
        meter->Add(Op::kHashProbeTuple);
        auto it = ht->find(JoinKeyBytes(key));
        if (it == ht->end()) continue;
        for (const auto& binds : it->second) emit(row, binds);
        if (meter->ExceededBudget()) {
          return Status::Cancelled(
              "relational execution exceeded cost budget");
        }
      }
    } else {
      // ---- index nested-loop join (also covers cartesian steps) ----
      for (const auto& row : cur.rows) {
        BoundPattern bp = p.ConstantExtent();
        // Substitute join-variable values from the outer row.
        auto bind_slot = [&](const Slot& slot,
                             std::optional<TermId>* target) {
          if (!slot.is_variable) return;
          const int c = cur.ColumnIndex(slot.var);
          if (c >= 0) *target = row[static_cast<size_t>(c)];
        };
        bind_slot(p.slots[0], &bp.subject);
        bind_slot(p.slots[1], &bp.predicate);
        bind_slot(p.slots[2], &bp.object);
        std::unordered_map<std::string, TermId> binds;
        Status scan = table_->ScanPattern(bp, meter, [&](const Triple& t) {
          if (!p.ExtractBindings(t, &binds)) return true;
          emit(row, binds);
          return !meter->ExceededBudget();
        });
        DSKG_RETURN_NOT_OK(scan);
        if (meter->ExceededBudget()) {
          return Status::Cancelled(
              "relational execution exceeded cost budget");
        }
      }
    }

    cur = std::move(next);
    for (const std::string& v : new_vars) bound.insert(v);
    if (cur.rows.empty()) break;  // no results; remaining joins are no-ops
  }
  return Status::OK();
}

}  // namespace dskg::relstore
