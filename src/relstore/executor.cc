#include "relstore/executor.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

namespace dskg::relstore {

using rdf::TermId;
using rdf::Triple;
using sparql::BindingTable;

namespace {

Executor::Slot EncodeSlot(const sparql::PatternTerm& t,
                          const rdf::Dictionary& dict) {
  Executor::Slot s;
  if (t.is_variable) {
    s.is_variable = true;
    s.var = t.text;
    return s;
  }
  s.constant = dict.Lookup(t.text);
  s.missing_constant = (s.constant == rdf::kInvalidTermId);
  return s;
}

}  // namespace

void Executor::EncodedPattern::CompileSlots() {
  vars.clear();
  for (int i = 0; i < 3; ++i) {
    if (!slots[i].is_variable) {
      var_of_pos[i] = -1;
      continue;
    }
    const auto it = std::find(vars.begin(), vars.end(), slots[i].var);
    if (it == vars.end()) {
      var_of_pos[i] = static_cast<int>(vars.size());
      vars.push_back(slots[i].var);
    } else {
      var_of_pos[i] = static_cast<int>(it - vars.begin());
    }
  }
}

BoundPattern Executor::EncodedPattern::ConstantExtent() const {
  BoundPattern b;
  if (!slots[0].is_variable) b.subject = slots[0].constant;
  if (!slots[1].is_variable) b.predicate = slots[1].constant;
  if (!slots[2].is_variable) b.object = slots[2].constant;
  return b;
}

bool Executor::EncodedPattern::ExtractVarValues(const Triple& t,
                                                TermId* out) const {
  const TermId vals[3] = {t.subject, t.predicate, t.object};
  for (size_t v = 0; v < vars.size(); ++v) out[v] = rdf::kInvalidTermId;
  for (int i = 0; i < 3; ++i) {
    const int v = var_of_pos[i];
    if (v < 0) continue;
    if (out[v] == rdf::kInvalidTermId) {
      out[v] = vals[i];
    } else if (out[v] != vals[i]) {
      return false;
    }
  }
  return true;
}

namespace {

double JoinVarSelectivity(const TripleTable& table, TermId predicate,
                          bool subject_bound, bool object_bound) {
  PredicateTableStats st = table.StatsOf(predicate);
  double est = static_cast<double>(st.num_triples);
  if (subject_bound) {
    est /= std::max<uint64_t>(1, st.num_distinct_subjects);
  }
  if (object_bound) {
    est /= std::max<uint64_t>(1, st.num_distinct_objects);
  }
  return std::max(1.0, est);
}

/// Estimated matches for a pattern when, in addition to its constants, the
/// variable positions in `bound_vars` are bound (to values unknown at plan
/// time). Mirrors TripleTable::EstimateMatches but works on masks.
uint64_t EstimateWithBoundVars(
    const TripleTable& table, const Executor::EncodedPattern& p,
    const std::unordered_set<std::string>& bound_vars) {
  const Executor::Slot& s = p.slots[0];
  const Executor::Slot& pr = p.slots[1];
  const Executor::Slot& o = p.slots[2];
  const bool s_bound = !s.is_variable || bound_vars.count(s.var) > 0;
  const bool o_bound = !o.is_variable || bound_vars.count(o.var) > 0;
  if (!pr.is_variable) {
    return static_cast<uint64_t>(
        JoinVarSelectivity(table, pr.constant, s_bound, o_bound));
  }
  // Variable predicate: uniform assumption over the whole table.
  double est = static_cast<double>(table.size());
  if (s_bound) est /= std::max<uint64_t>(1, table.SubjectCount());
  if (o_bound) est /= std::max<uint64_t>(1, table.ObjectCount());
  return static_cast<uint64_t>(std::max(1.0, est));
}

/// Index of the pattern with the smallest estimated constant extent —
/// the serial and sharded paths' common choice of initial pattern.
size_t SmallestExtentPattern(
    const TripleTable& table,
    const std::vector<Executor::EncodedPattern>& patterns) {
  size_t best = 0;
  uint64_t best_est = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < patterns.size(); ++i) {
    const uint64_t est = table.EstimateMatches(patterns[i].ConstantExtent());
    if (est < best_est) {
      best_est = est;
      best = i;
    }
  }
  return best;
}

/// Scan callback materializing each matching triple of `p` as a row of
/// `cur` (one `kMaterializeTuple` each). `cur`'s columns are exactly
/// `p.Vars()`, so the extracted distinct-var values are the row — one
/// flat-buffer bump, no per-row vector, no name lookup. Shared by the
/// serial initial scan and every shard worker, so their per-row charging
/// is structural, not kept in sync by hand. Stops the scan once `meter`'s
/// budget is exhausted (never the case for shard-local meters, which
/// carry none).
std::function<bool(const Triple&)> MaterializeInto(
    const Executor::EncodedPattern& p, BindingTable* cur, CostMeter* meter) {
  return [&p, cur, meter](const Triple& t) {
    TermId vals[3];
    if (!p.ExtractVarValues(t, vals)) return true;
    meter->Add(Op::kMaterializeTuple);
    TermId* row = cur->AppendRow();
    for (size_t v = 0; v < p.NumVars(); ++v) row[v] = vals[v];
    return !meter->ExceededBudget();
  };
}

/// A packed hash-join key: up to 3 term ids (a pattern has at most three
/// distinct variables) in a fixed array — single-id keys are effectively
/// a bare uint64, wider keys a small stack array. Never allocates,
/// replacing the old per-probe `std::string` key serialization.
struct JoinKey {
  std::array<TermId, 3> v{};
  uint8_t n = 0;

  friend bool operator==(const JoinKey& a, const JoinKey& b) {
    return a.n == b.n && a.v == b.v;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^ k.n;
    for (uint8_t i = 0; i < k.n; ++i) {
      h ^= k.v[i] + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      h *= 0xbf58476d1ce4e5b9ULL;
    }
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

/// One hash join's build side, columnar: per key, the count of matching
/// extent triples and their new-variable values in one flat buffer of
/// stride `new_vars.size()`. (Join-variable values are the key itself, so
/// only the columns a match appends are stored.) Read-only once built.
struct JoinBuild {
  struct Group {
    uint32_t count = 0;
    std::vector<TermId> new_vals;  // count * stride ids
  };
  std::unordered_map<JoinKey, Group, JoinKeyHash> groups;
  size_t stride = 0;  // number of new (unbound) pattern variables
};

}  // namespace

/// Per-query shared hash-join builds (see executor.h). Entries are keyed
/// by pattern index in an ordered map so the caller can fold the build
/// meters into the query meter in a deterministic order. (The build side
/// depends only on the pattern and the plan-time bound-variable set,
/// which the greedy join order makes identical across shards.)
struct Executor::SharedJoinState {
  struct Entry {
    std::mutex mu;
    bool built = false;
    Status status;
    JoinBuild build;
    CostMeter build_meter;
  };

  Entry* EntryFor(size_t pattern_index) {
    std::lock_guard<std::mutex> lock(mu);
    return &entries[pattern_index];
  }

  std::mutex mu;
  std::map<size_t, Entry> entries;
};

Executor::CompiledQuery Executor::Compile(const sparql::Query& query) const {
  CompiledQuery out;
  out.patterns.resize(query.patterns.size());
  for (size_t i = 0; i < query.patterns.size(); ++i) {
    const sparql::PatternTerm* terms[3] = {&query.patterns[i].subject,
                                           &query.patterns[i].predicate,
                                           &query.patterns[i].object};
    for (int pos = 0; pos < 3; ++pos) {
      if (terms[pos]->is_param) {
        // An open site: the slot stays a constant position (so it is part
        // of the scan extent, never a join variable) whose value arrives
        // at execution time. Not "missing" — bound values are validated
        // when supplied instead of silently matching nothing.
        uint32_t idx = 0;
        const auto it = std::find(out.param_names.begin(),
                                  out.param_names.end(), terms[pos]->text);
        if (it == out.param_names.end()) {
          idx = static_cast<uint32_t>(out.param_names.size());
          out.param_names.push_back(terms[pos]->text);
        } else {
          idx = static_cast<uint32_t>(it - out.param_names.begin());
        }
        out.param_sites.push_back({static_cast<uint32_t>(i),
                                   static_cast<uint8_t>(pos), idx});
      } else {
        out.patterns[i].slots[pos] = EncodeSlot(*terms[pos], *dict_);
      }
    }
    out.patterns[i].CompileSlots();
    if (out.patterns[i].HasMissingConstant()) out.impossible = true;
  }
  out.out_vars =
      query.select_vars.empty() ? query.AllVariables() : query.select_vars;
  return out;
}

namespace {

/// Clones the compiled patterns and writes the bound parameter values
/// into their sites. Fails (rather than matching nothing, or worse,
/// treating the position as a wildcard) when a value is absent.
Status PatchParams(const Executor::CompiledQuery& cq,
                   const TermId* param_values,
                   std::vector<Executor::EncodedPattern>* out) {
  *out = cq.patterns;
  for (const Executor::CompiledQuery::ParamSite& site : cq.param_sites) {
    const TermId v =
        param_values != nullptr ? param_values[site.param] : rdf::kInvalidTermId;
    if (v == rdf::kInvalidTermId) {
      return Status::FailedPrecondition(
          "unbound parameter $" + cq.param_names[site.param] +
          " (bind every parameter before executing)");
    }
    (*out)[site.pattern].slots[site.pos].constant = v;
  }
  return Status::OK();
}

}  // namespace

Result<BindingTable> Executor::Execute(const sparql::Query& query,
                                       CostMeter* meter) const {
  return Run(query, nullptr, meter);
}

Result<BindingTable> Executor::ExecuteWithSeed(const sparql::Query& query,
                                               const BindingTable& seed,
                                               CostMeter* meter) const {
  return Run(query, &seed, meter);
}

Result<BindingTable> Executor::ExecuteSharded(const sparql::Query& query,
                                              CostMeter* meter,
                                              ThreadPool* pool,
                                              int max_shards) const {
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }
  if (pool == nullptr) return Run(query, nullptr, meter);
  if (max_shards <= 0) max_shards = static_cast<int>(pool->size());
  // Budgeted runs use cooperative cancellation, a serial protocol.
  if (max_shards <= 1 || meter->budget_micros() > 0.0) {
    return Run(query, nullptr, meter);
  }

  // ---- encode and plan (exactly as the serial path does) ----------------
  CompiledQuery eq = Compile(query);
  if (!eq.param_sites.empty()) {
    return Status::FailedPrecondition(
        "query has unbound parameters; prepare and bind it instead");
  }
  std::vector<EncodedPattern>& patterns = eq.patterns;
  const std::vector<std::string>& out_vars = eq.out_vars;
  if (eq.impossible) {
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }
  const size_t first = SmallestExtentPattern(*table_, patterns);
  const std::vector<TripleTable::PatternShard> shards =
      table_->ShardPattern(patterns[first].ConstantExtent(), max_shards);
  if (shards.size() <= 1) {
    // Nothing matches or the range fits one leaf run: serial is both
    // correct and cheapest (no extra descents).
    return Run(query, nullptr, meter);
  }
  patterns[first].used = true;

  // ---- run every shard's scan + remaining joins concurrently ------------
  struct ShardOutcome {
    Status status;
    BindingTable table;
    CostMeter meter;
  };
  SharedJoinState shared_joins;  // hash builds: once per pattern, not per shard
  std::vector<ShardOutcome> outcomes(shards.size());
  pool->ParallelFor(shards.size(), [&](size_t i) {
    ShardOutcome& out = outcomes[i];
    out.meter = CostMeter(meter->model(), meter->throttle());
    std::vector<EncodedPattern> local = patterns;  // own used-flags
    const EncodedPattern& p = local[first];
    BindingTable cur;
    cur.columns = p.Vars();
    std::unordered_set<std::string> bound(cur.columns.begin(),
                                          cur.columns.end());
    out.status = table_->ScanShard(shards[i], p.ConstantExtent(), &out.meter,
                                   MaterializeInto(p, &cur, &out.meter));
    if (!out.status.ok()) return;
    out.status = JoinRemaining(&local, &cur, &bound, 1, &out.meter,
                               &shared_joins);
    if (!out.status.ok()) return;
    out.table = cur.Project(out_vars);
  });

  // ---- merge in ascending shard order (deterministic) -------------------
  // Shared hash builds first, in pattern order: each was charged exactly
  // once however many shards probed it.
  for (auto& [idx, entry] : shared_joins.entries) {
    (void)idx;
    DSKG_RETURN_NOT_OK(entry.status);
    meter->Merge(entry.build_meter);
  }
  BindingTable merged;
  merged.columns = out_vars;
  for (ShardOutcome& out : outcomes) {
    DSKG_RETURN_NOT_OK(out.status);
    meter->Merge(out.meter);
    if (out.table.columns.size() != out_vars.size()) {
      if (!out.table.empty()) {
        return Status::Internal("projection lost columns unexpectedly");
      }
      continue;  // empty shard cut short by an empty intermediate
    }
    merged.AppendRowsFrom(out.table);
  }
  return merged;
}

Result<BindingTable> Executor::Run(const sparql::Query& query,
                                   const BindingTable* seed,
                                   CostMeter* meter) const {
  return ExecuteCompiled(Compile(query), nullptr, seed, meter);
}

Result<BindingTable> Executor::ExecuteCompiledJoined(
    const CompiledQuery& cq, const TermId* param_values,
    const BindingTable* seed, CostMeter* meter) const {
  const std::vector<std::string>& out_vars = cq.out_vars;
  if (cq.patterns.empty()) {
    return Status::InvalidArgument("query has no patterns");
  }

  // ---- clone the plan, patch parameter sites ----------------------------
  std::vector<EncodedPattern> patterns;
  DSKG_RETURN_NOT_OK(PatchParams(cq, param_values, &patterns));

  if (cq.impossible) {
    // A constant that is not in the dictionary matches nothing.
    BindingTable empty;
    empty.columns = out_vars;
    return empty;
  }

  // ---- initial relation -------------------------------------------------
  BindingTable cur;
  std::unordered_set<std::string> bound;
  size_t num_joined = 0;

  if (seed != nullptr) {
    // Migrated intermediate results arrive as a columnar table already;
    // adopting them is one buffer copy, no per-row re-keying.
    cur = *seed;
    for (const std::string& c : cur.columns) bound.insert(c);
    // Reading the seed out of the temporary table space.
    meter->Add(Op::kSeqScanTuple, cur.NumRows());
  } else {
    // Start from the pattern with the smallest estimated extent.
    EncodedPattern& p = patterns[SmallestExtentPattern(*table_, patterns)];
    p.used = true;
    ++num_joined;
    cur.columns = p.Vars();
    for (const std::string& v : cur.columns) bound.insert(v);
    Status scan = table_->ScanPattern(p.ConstantExtent(), meter,
                                      MaterializeInto(p, &cur, meter));
    DSKG_RETURN_NOT_OK(scan);
    if (meter->ExceededBudget()) {
      return Status::Cancelled("relational execution exceeded cost budget");
    }
  }

  DSKG_RETURN_NOT_OK(JoinRemaining(&patterns, &cur, &bound, num_joined,
                                   meter));
  return cur;
}

Result<BindingTable> Executor::ExecuteCompiled(
    const CompiledQuery& cq, const TermId* param_values,
    const BindingTable* seed, CostMeter* meter) const {
  DSKG_ASSIGN_OR_RETURN(
      BindingTable cur,
      ExecuteCompiledJoined(cq, param_values, seed, meter));

  // ---- projection --------------------------------------------------------
  BindingTable out = cur.Project(cq.out_vars);
  // Projected-away columns may leave missing columns if joins were cut
  // short by an empty intermediate; normalize the header.
  if (out.columns.size() != cq.out_vars.size()) {
    BindingTable normalized;
    normalized.columns = cq.out_vars;
    if (!cur.empty()) {
      return Status::Internal("projection lost columns unexpectedly");
    }
    return normalized;
  }
  return out;
}

Status Executor::JoinRemaining(std::vector<EncodedPattern>* patterns_ptr,
                               BindingTable* cur_ptr,
                               std::unordered_set<std::string>* bound_ptr,
                               size_t num_joined, CostMeter* meter,
                               SharedJoinState* shared) const {
  std::vector<EncodedPattern>& patterns = *patterns_ptr;
  BindingTable& cur = *cur_ptr;
  std::unordered_set<std::string>& bound = *bound_ptr;
  const CostModel& model = *meter->model();

  // ---- join remaining patterns, greedily --------------------------------
  while (num_joined < patterns.size()) {
    // Prefer connected patterns (sharing a bound variable); among those,
    // the one with the smallest estimate given its join vars are bound.
    size_t best = patterns.size();
    uint64_t best_est = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].used) continue;
      bool connected = false;
      for (const std::string& v : patterns[i].Vars()) {
        if (bound.count(v) > 0) {
          connected = true;
          break;
        }
      }
      static const std::unordered_set<std::string> kNoBound;
      const uint64_t est = EstimateWithBoundVars(*table_, patterns[i],
                                                 connected ? bound : kNoBound);
      if (best == patterns.size() || (connected && !best_connected) ||
          (connected == best_connected && est < best_est)) {
        best = i;
        best_est = est;
        best_connected = connected;
      }
    }
    EncodedPattern& p = patterns[best];
    p.used = true;
    ++num_joined;

    // ---- step plan: resolve every name to an index, once -----------------
    // Pattern variables split into join vars (already bound, with an
    // outer-table column) and new vars (appended by this step). All
    // per-row work below runs on these integer slots.
    const size_t cur_cols = cur.NumColumns();
    std::vector<std::string> join_vars;   // names, for estimates only
    JoinKey probe_cols;                   // outer column of each join var
    JoinKey key_src;                      // pattern-var index of each join var
    std::vector<int> new_var_src;         // pattern-var index of each new var
    std::vector<std::string> new_vars;
    for (size_t v = 0; v < p.NumVars(); ++v) {
      const std::string& name = p.Vars()[v];
      if (bound.count(name) > 0) {
        probe_cols.v[probe_cols.n] =
            static_cast<TermId>(cur.ColumnIndex(name));
        key_src.v[key_src.n] = static_cast<TermId>(v);
        ++probe_cols.n;
        ++key_src.n;
        join_vars.push_back(name);
      } else {
        new_var_src.push_back(static_cast<int>(v));
        new_vars.push_back(name);
      }
    }
    // Outer column feeding each variable position (for index nested-loop
    // probes), or -1 when the position is a constant or a new variable.
    int col_of_pos[3];
    for (int i = 0; i < 3; ++i) {
      const int v = p.var_of_pos[i];
      col_of_pos[i] =
          v >= 0 ? cur.ColumnIndex(p.Vars()[static_cast<size_t>(v)]) : -1;
    }

    // ---- operator choice (deterministic cost-based) ----
    const double rows_out = static_cast<double>(cur.NumRows());
    const uint64_t per_row_est = EstimateWithBoundVars(*table_, p, bound);
    const uint64_t extent_est =
        table_->EstimateMatches(p.ConstantExtent());
    const double cost_inlj =
        rows_out * (model.weight(Op::kIndexProbe) +
                    static_cast<double>(per_row_est) *
                        model.weight(Op::kIndexScanTuple));
    const double cost_hash =
        static_cast<double>(extent_est) *
            (model.weight(Op::kIndexScanTuple) +
             model.weight(Op::kHashBuildTuple)) +
        rows_out * model.weight(Op::kHashProbeTuple);
    const bool use_hash = !join_vars.empty() && cost_hash < cost_inlj;

    BindingTable next;
    next.columns = cur.columns;
    for (const std::string& v : new_vars) next.columns.push_back(v);
    next.ReserveRows(cur.NumRows());  // joins rarely shrink below the outer

    const size_t num_new = new_var_src.size();
    // Emits base-row + new-var values: one flat-buffer bump per output
    // row. `vals` holds the pattern's distinct-var values.
    auto emit = [&](const TermId* base, const TermId* vals) {
      TermId* row = next.AppendRow();
      std::copy(base, base + cur_cols, row);
      for (size_t j = 0; j < num_new; ++j) {
        row[cur_cols + j] = vals[new_var_src[j]];
      }
      meter->Add(Op::kJoinOutputTuple);
      meter->Add(Op::kMaterializeTuple);
    };

    if (use_hash) {
      // ---- hash join: scan the extent once, probe with outer rows ----
      // The build side depends only on the pattern's constant extent and
      // the plan-time variable split, so `build` is the same work whoever
      // runs it. Serial path: build locally, charging `meter`. Sharded
      // path: the first shard choosing a hash join on this pattern builds
      // into the shared entry (cost on the entry's meter, folded in once
      // by ExecuteSharded); everyone else probes it read-only,
      // eliminating the per-shard duplicate extent scans +
      // kHashBuildTuple charges.
      auto build = [&](JoinBuild* jb, CostMeter* build_meter) -> Status {
        jb->stride = num_new;
        return table_->ScanPattern(
            p.ConstantExtent(), build_meter, [&](const Triple& t) {
              TermId vals[3];
              if (!p.ExtractVarValues(t, vals)) return true;
              JoinKey key = key_src;  // copies n; values filled below
              for (uint8_t k = 0; k < key.n; ++k) {
                key.v[k] = vals[key_src.v[k]];
              }
              build_meter->Add(Op::kHashBuildTuple);
              JoinBuild::Group& g = jb->groups[key];
              ++g.count;
              for (size_t j = 0; j < num_new; ++j) {
                g.new_vals.push_back(vals[new_var_src[j]]);
              }
              return !build_meter->ExceededBudget();
            });
      };
      const JoinBuild* jb = nullptr;
      JoinBuild local_build;
      if (shared != nullptr) {
        SharedJoinState::Entry* entry = shared->EntryFor(best);
        {
          std::lock_guard<std::mutex> lock(entry->mu);
          if (!entry->built) {
            // Inherit the query's cost model and throttle (every shard
            // meter carries the same ones), not CostMeter's defaults.
            entry->build_meter = CostMeter(meter->model(), meter->throttle());
            entry->status = build(&entry->build, &entry->build_meter);
            entry->built = true;
          }
        }
        DSKG_RETURN_NOT_OK(entry->status);
        jb = &entry->build;
      } else {
        DSKG_RETURN_NOT_OK(build(&local_build, meter));
        jb = &local_build;
      }
      for (size_t r = 0; r < cur.NumRows(); ++r) {
        const TermId* row = cur.RowData(r);
        JoinKey key = probe_cols;
        for (uint8_t k = 0; k < key.n; ++k) {
          key.v[k] = row[probe_cols.v[k]];
        }
        meter->Add(Op::kHashProbeTuple);
        const auto it = jb->groups.find(key);
        if (it == jb->groups.end()) continue;
        const JoinBuild::Group& g = it->second;
        for (uint32_t m = 0; m < g.count; ++m) {
          // Reconstruct the match's distinct-var values: join vars from
          // the key, new vars from the group's flat payload.
          TermId vals[3];
          for (uint8_t k = 0; k < key_src.n; ++k) {
            vals[key_src.v[k]] = key.v[k];
          }
          for (size_t j = 0; j < num_new; ++j) {
            vals[new_var_src[j]] = g.new_vals[m * num_new + j];
          }
          emit(row, vals);
        }
        if (meter->ExceededBudget()) {
          return Status::Cancelled(
              "relational execution exceeded cost budget");
        }
      }
    } else {
      // ---- index nested-loop join (also covers cartesian steps) ----
      const BoundPattern extent = p.ConstantExtent();
      for (size_t r = 0; r < cur.NumRows(); ++r) {
        const TermId* row = cur.RowData(r);
        BoundPattern bp = extent;
        // Substitute join-variable values from the outer row (slot
        // indexes resolved once above, no per-row name lookup).
        if (col_of_pos[0] >= 0) bp.subject = row[col_of_pos[0]];
        if (col_of_pos[1] >= 0) bp.predicate = row[col_of_pos[1]];
        if (col_of_pos[2] >= 0) bp.object = row[col_of_pos[2]];
        Status scan = table_->ScanPattern(bp, meter, [&](const Triple& t) {
          TermId vals[3];
          if (!p.ExtractVarValues(t, vals)) return true;
          emit(row, vals);
          return !meter->ExceededBudget();
        });
        DSKG_RETURN_NOT_OK(scan);
        if (meter->ExceededBudget()) {
          return Status::Cancelled(
              "relational execution exceeded cost budget");
        }
      }
    }

    cur = std::move(next);
    for (const std::string& v : new_vars) bound.insert(v);
    if (cur.empty()) break;  // no results; remaining joins are no-ops
  }
  return Status::OK();
}

}  // namespace dskg::relstore
