#ifndef DSKG_RDF_DICTIONARY_H_
#define DSKG_RDF_DICTIONARY_H_

/// \file dictionary.h
/// Bidirectional mapping between term strings and dense `TermId`s.

#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/triple.h"

namespace dskg::rdf {

/// Transparent string hash: lets the forward index probe with a
/// `string_view` directly, so the `Intern`/`Lookup` hit paths allocate
/// nothing (previously every call built a temporary `std::string` key).
struct TermHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};

/// Interns term strings, assigning dense ids 0, 1, 2, ... in first-seen
/// order. Lookup is O(1) expected in both directions.
///
/// Terms are usage-counted for the online-update path: every stored triple
/// occurrence `Retain`s its three ids, deletion `Release`s them, and a term
/// whose count drops to zero is forgotten — its text is freed and its id
/// recycled by the next `Intern` (LIFO, so id assignment is a
/// deterministic function of the operation sequence; the left-right store
/// replicas rely on that to stay id-aligned). Ids retained at least once
/// are stable for as long as any triple uses them.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: a dictionary is typically shared by pointer.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for `term`, interning it if new (recycled ids first).
  /// The hit path is allocation-free (heterogeneous `string_view` probe).
  TermId Intern(std::string_view term) {
    auto it = ids_.find(term);
    if (it != ids_.end()) return it->second;
    TermId id;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
      terms_[id] = std::string(term);
    } else {
      id = terms_.size();
      terms_.emplace_back(term);
      refs_.push_back(0);
    }
    ids_.emplace(terms_[id], id);
    bytes_ += term.size();
    return id;
  }

  /// Records one usage of `id` (callers: one per triple occurrence).
  void Retain(TermId id) {
    if (id < refs_.size()) ++refs_[id];
  }

  /// Releases one usage of `id`. At zero the term is forgotten: `Lookup`
  /// stops finding it, its text bytes are reclaimed, and the id joins the
  /// free list. Unretained or already-free ids are ignored.
  void Release(TermId id) {
    if (id >= refs_.size() || refs_[id] == 0) return;
    if (--refs_[id] > 0) return;
    auto it = ids_.find(terms_[id]);
    if (it != ids_.end() && it->second == id) ids_.erase(it);
    bytes_ -= terms_[id].size();
    terms_[id] = std::string();  // free the text
    free_ids_.push_back(id);
  }

  /// Current usage count of `id` (0 for unretained or freed ids).
  uint64_t RefCount(TermId id) const {
    return id < refs_.size() ? refs_[id] : 0;
  }

  /// Number of freed ids awaiting reuse.
  size_t free_ids() const { return free_ids_.size(); }

  /// Returns the id for `term` if present, `kInvalidTermId` otherwise.
  /// Allocation-free (heterogeneous `string_view` probe).
  TermId Lookup(std::string_view term) const {
    auto it = ids_.find(term);
    return it == ids_.end() ? kInvalidTermId : it->second;
  }

  /// True if `term` has been interned.
  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidTermId;
  }

  /// Returns the string for `id`. Requires `id < size()`.
  const std::string& TermOf(TermId id) const { return terms_.at(id); }

  /// Returns the string for `id` or an error if out of range.
  Result<std::string> TermOfChecked(TermId id) const {
    if (id >= terms_.size()) {
      return Status::NotFound("term id " + std::to_string(id) +
                              " not in dictionary of size " +
                              std::to_string(terms_.size()));
    }
    return terms_[id];
  }

  /// Size of the id space (live terms plus freed slots awaiting reuse).
  size_t size() const { return terms_.size(); }

  /// Total bytes of interned term text (used for size reporting).
  uint64_t text_bytes() const { return bytes_; }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId, TermHash, std::equal_to<>> ids_;
  std::vector<uint64_t> refs_;     // usage count per id
  std::vector<TermId> free_ids_;   // recycled ids, LIFO
  uint64_t bytes_ = 0;
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_DICTIONARY_H_
