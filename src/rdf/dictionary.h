#ifndef DSKG_RDF_DICTIONARY_H_
#define DSKG_RDF_DICTIONARY_H_

/// \file dictionary.h
/// Bidirectional mapping between term strings and dense `TermId`s.
///
/// Memory layout — *interned-string arena*: term text lives in an
/// append-only byte arena (a list of fixed-size chunks that never move),
/// each id owning one `{chunk, offset, len}` span. The forward index is an
/// open-addressing (linear-probing) hash table of term ids hashed by their
/// span's text, probed heterogeneously with a `string_view`, so `Intern`
/// and `Lookup` allocate nothing — hit or miss. Compared to the historical
/// layout (a `std::vector<std::string>` plus an `unordered_map` keyed by a
/// second copy of every string), each term's text is stored once, with
/// ~24 bytes of fixed per-term metadata instead of two `std::string`
/// headers plus a hash-map node.
///
/// `string_view`s returned by `TermOf` point into the arena and stay valid
/// for as long as the term is live (chunks never move or shrink); the
/// bytes of a term whose refcount reached zero may be overwritten when its
/// id is recycled.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "rdf/triple.h"

namespace dskg::rdf {

/// Interns term strings, assigning dense ids 0, 1, 2, ... in first-seen
/// order. Lookup is O(1) expected in both directions and allocation-free.
///
/// Terms are usage-counted for the online-update path: every stored triple
/// occurrence `Retain`s its three ids, deletion `Release`s them, and a term
/// whose count drops to zero is forgotten — its id joins the free list and
/// is recycled by the next `Intern` (LIFO, so id assignment is a
/// deterministic function of the operation sequence; the left-right store
/// replicas rely on that to stay id-aligned). The freed id keeps its arena
/// extent: a recycled term whose text fits the old extent is written in
/// place, so churn at a steady term population stops growing the arena.
/// Ids retained at least once are stable for as long as any triple uses
/// them.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: a dictionary is typically shared by pointer.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Pre-sizes the id table, hash index and text arena — the bulk-load /
  /// replica-rebuild path (`Dataset::Clone`) passes the source's exact
  /// totals so the rebuild performs O(chunks) allocations instead of
  /// growing incrementally. An allocation hint only; never shrinks.
  void Reserve(size_t num_terms, uint64_t total_text_bytes) {
    spans_.reserve(num_terms);
    refs_.reserve(num_terms);
    size_t want_slots = 16;
    while (want_slots * 7 < num_terms * 10) want_slots *= 2;
    if (want_slots > slots_.size()) Rehash(want_slots);
    if (total_text_bytes > 0) ReserveArena(total_text_bytes);
  }

  /// Returns the id for `term`, interning it if new (recycled ids first).
  /// Allocation-free on hit (heterogeneous `string_view` probe of the
  /// open-addressing index).
  TermId Intern(std::string_view term) {
    const uint64_t hash = HashTerm(term);
    const TermId found = FindId(term, hash);
    if (found != kInvalidTermId) return found;
    TermId id;
    if (!free_ids_.empty()) {
      id = free_ids_.back();
      free_ids_.pop_back();
      WriteSpan(&spans_[id], term);
    } else {
      id = spans_.size();
      Span s;
      WriteSpan(&s, term);
      spans_.push_back(s);
      refs_.push_back(0);
    }
    InsertSlot(id, hash);
    bytes_ += term.size();
    return id;
  }

  /// Records one usage of `id` (callers: one per triple occurrence).
  void Retain(TermId id) {
    if (id < refs_.size()) ++refs_[id];
  }

  /// Releases one usage of `id`. At zero the term is forgotten: `Lookup`
  /// stops finding it, its text bytes become reusable, and the id joins
  /// the free list. Unretained or already-free ids are ignored.
  void Release(TermId id) {
    if (id >= refs_.size() || refs_[id] == 0) return;
    if (--refs_[id] > 0) return;
    Span& s = spans_[id];
    EraseSlot(id, HashTerm(TextOf(s)));
    bytes_ -= s.len;
    s.len = 0;  // TermOf of a freed id reads as empty; extent kept for reuse
    free_ids_.push_back(id);
  }

  /// Current usage count of `id` (0 for unretained or freed ids).
  uint64_t RefCount(TermId id) const {
    return id < refs_.size() ? refs_[id] : 0;
  }

  /// Number of freed ids awaiting reuse.
  size_t free_ids() const { return free_ids_.size(); }

  /// Returns the id for `term` if present, `kInvalidTermId` otherwise.
  /// Allocation-free (heterogeneous `string_view` probe).
  TermId Lookup(std::string_view term) const {
    return FindId(term, HashTerm(term));
  }

  /// True if `term` has been interned.
  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidTermId;
  }

  /// Returns the text for `id` as a view into the arena. Requires
  /// `id < size()`. Valid while the term stays live (freed ids read as
  /// empty until recycled; recycling may overwrite the bytes).
  std::string_view TermOf(TermId id) const { return TextOf(spans_.at(id)); }

  /// Returns the string for `id` or an error if out of range.
  Result<std::string> TermOfChecked(TermId id) const {
    if (id >= spans_.size()) {
      return Status::NotFound("term id " + std::to_string(id) +
                              " not in dictionary of size " +
                              std::to_string(spans_.size()));
    }
    return std::string(TextOf(spans_[id]));
  }

  /// Size of the id space (live terms plus freed slots awaiting reuse).
  size_t size() const { return spans_.size(); }

  /// Total bytes of interned term text (used for size reporting).
  uint64_t text_bytes() const { return bytes_; }

  /// Bytes allocated for arena chunks (includes reusable freed extents
  /// and chunk tails). Deterministic for a given operation sequence.
  uint64_t arena_bytes() const { return arena_bytes_; }

  /// Total storage-tier footprint: arena chunks plus span/refcount/index
  /// tables. Deterministic for a given operation sequence (counts table
  /// sizes, not vector capacities).
  uint64_t MemoryBytes() const {
    return arena_bytes_ + spans_.size() * sizeof(Span) +
           refs_.size() * sizeof(uint64_t) + slots_.size() * sizeof(TermId) +
           free_ids_.size() * sizeof(TermId);
  }

 private:
  /// One term's extent in the arena. `cap` is the extent's full size: a
  /// recycled id whose new text fits `cap` reuses the bytes in place.
  struct Span {
    uint32_t chunk = 0;
    uint32_t offset = 0;
    uint32_t len = 0;
    uint32_t cap = 0;
  };

  struct Chunk {
    std::unique_ptr<char[]> data;
    uint32_t cap = 0;
    uint32_t used = 0;
  };

  static constexpr uint32_t kChunkSize = 1 << 16;

  std::string_view TextOf(const Span& s) const {
    // Zero-length spans (the empty term, or a freed id awaiting reuse)
    // may reference no chunk at all — never dereference through them.
    if (s.len == 0) return {};
    return {chunks_[s.chunk].data.get() + s.offset, s.len};
  }

  /// FNV-1a; self-contained so the probe order is platform-independent.
  static uint64_t HashTerm(std::string_view s) {
    uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// Appends a chunk able to hold at least `min(need, ~4 GiB)` more
  /// bytes. Span offsets are 32-bit, so one chunk cannot exceed 4 GiB —
  /// a `Reserve` hint beyond that gets the largest possible chunk and
  /// the remainder grows incrementally (never a silently tiny chunk).
  void ReserveArena(uint64_t need) {
    const uint32_t cap = static_cast<uint32_t>(std::min<uint64_t>(
        std::max<uint64_t>(kChunkSize, need), 0xFFFFFFFFull));
    chunks_.push_back({std::make_unique<char[]>(cap), cap, 0});
    arena_bytes_ += cap;
  }

  /// Places `term`'s bytes: in the span's existing extent when it fits
  /// (the recycle path), else in fresh arena space.
  void WriteSpan(Span* s, std::string_view term) {
    const uint32_t len = static_cast<uint32_t>(term.size());
    if (len == 0) {
      s->len = 0;  // the empty term needs no extent (see TextOf)
      return;
    }
    if (len > s->cap) {
      if (chunks_.empty() || chunks_.back().cap - chunks_.back().used < len) {
        ReserveArena(len);
      }
      Chunk& c = chunks_.back();
      s->chunk = static_cast<uint32_t>(chunks_.size() - 1);
      s->offset = c.used;
      s->cap = len;
      c.used += len;
    }
    s->len = len;
    std::copy(term.begin(), term.end(),
              chunks_[s->chunk].data.get() + s->offset);
  }

  // ---- open-addressing forward index (linear probing) ---------------------

  size_t Mask() const { return slots_.size() - 1; }

  TermId FindId(std::string_view term, uint64_t hash) const {
    if (slots_.empty()) return kInvalidTermId;
    size_t i = hash & Mask();
    while (slots_[i] != kInvalidTermId) {
      if (TextOf(spans_[slots_[i]]) == term) return slots_[i];
      i = (i + 1) & Mask();
    }
    return kInvalidTermId;
  }

  void Rehash(size_t new_size) {
    std::vector<TermId> old = std::move(slots_);
    slots_.assign(new_size, kInvalidTermId);
    for (TermId id : old) {
      if (id == kInvalidTermId) continue;
      size_t i = HashTerm(TextOf(spans_[id])) & Mask();
      while (slots_[i] != kInvalidTermId) i = (i + 1) & Mask();
      slots_[i] = id;
    }
  }

  void InsertSlot(TermId id, uint64_t hash) {
    if (slots_.empty() || (live_ + 1) * 10 > slots_.size() * 7) {
      Rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    size_t i = hash & Mask();
    while (slots_[i] != kInvalidTermId) i = (i + 1) & Mask();
    slots_[i] = id;
    ++live_;
  }

  /// Backward-shift deletion: no tombstones, so the load factor only
  /// counts live entries and probe chains stay short under churn.
  void EraseSlot(TermId id, uint64_t hash) {
    if (slots_.empty()) return;
    size_t i = hash & Mask();
    while (slots_[i] != id) {
      if (slots_[i] == kInvalidTermId) return;  // not indexed (defensive)
      i = (i + 1) & Mask();
    }
    size_t hole = i;
    size_t j = (i + 1) & Mask();
    while (slots_[j] != kInvalidTermId) {
      const size_t ideal = HashTerm(TextOf(spans_[slots_[j]])) & Mask();
      // slots_[j] may fill the hole iff its probe path [ideal, j) passes
      // through the hole (cyclically).
      const bool reaches = ideal <= j ? (ideal <= hole && hole < j)
                                      : (hole >= ideal || hole < j);
      if (reaches) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & Mask();
    }
    slots_[hole] = kInvalidTermId;
    --live_;
  }

  std::vector<Chunk> chunks_;     ///< arena; chunk storage never moves
  std::vector<Span> spans_;       ///< per-id text extent
  std::vector<uint64_t> refs_;    ///< usage count per id
  std::vector<TermId> free_ids_;  ///< recycled ids, LIFO
  std::vector<TermId> slots_;     ///< open-addressing index (power of two)
  size_t live_ = 0;               ///< entries in `slots_`
  uint64_t bytes_ = 0;            ///< live text bytes
  uint64_t arena_bytes_ = 0;      ///< allocated chunk bytes
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_DICTIONARY_H_
