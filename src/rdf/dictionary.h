#ifndef DSKG_RDF_DICTIONARY_H_
#define DSKG_RDF_DICTIONARY_H_

/// \file dictionary.h
/// Bidirectional mapping between term strings and dense `TermId`s.

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "rdf/triple.h"

namespace dskg::rdf {

/// Interns term strings, assigning dense ids 0, 1, 2, ... in first-seen
/// order. Lookup is O(1) expected in both directions.
class Dictionary {
 public:
  Dictionary() = default;

  // Movable but not copyable: a dictionary is typically shared by pointer.
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// Returns the id for `term`, interning it if new.
  TermId Intern(std::string_view term) {
    auto it = ids_.find(std::string(term));
    if (it != ids_.end()) return it->second;
    const TermId id = terms_.size();
    terms_.emplace_back(term);
    ids_.emplace(terms_.back(), id);
    bytes_ += term.size();
    return id;
  }

  /// Returns the id for `term` if present, `kInvalidTermId` otherwise.
  TermId Lookup(std::string_view term) const {
    auto it = ids_.find(std::string(term));
    return it == ids_.end() ? kInvalidTermId : it->second;
  }

  /// True if `term` has been interned.
  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidTermId;
  }

  /// Returns the string for `id`. Requires `id < size()`.
  const std::string& TermOf(TermId id) const { return terms_.at(id); }

  /// Returns the string for `id` or an error if out of range.
  Result<std::string> TermOfChecked(TermId id) const {
    if (id >= terms_.size()) {
      return Status::NotFound("term id " + std::to_string(id) +
                              " not in dictionary of size " +
                              std::to_string(terms_.size()));
    }
    return terms_[id];
  }

  /// Number of interned terms.
  size_t size() const { return terms_.size(); }

  /// Total bytes of interned term text (used for size reporting).
  uint64_t text_bytes() const { return bytes_; }

 private:
  std::vector<std::string> terms_;
  std::unordered_map<std::string, TermId> ids_;
  uint64_t bytes_ = 0;
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_DICTIONARY_H_
