#ifndef DSKG_RDF_DICTIONARY_H_
#define DSKG_RDF_DICTIONARY_H_

/// \file dictionary.h
/// Bidirectional mapping between term strings and dense `TermId`s.
///
/// Memory layout — *interned-string arena*: term text lives in an
/// append-only byte arena (a list of fixed-size chunks that never move),
/// each id owning one `{ptr, len, cap}` span. The forward index is an
/// open-addressing (linear-probing) hash table of term ids hashed by their
/// span's text, probed heterogeneously with a `string_view`, so `Intern`
/// and `Lookup` allocate nothing — hit or miss. Compared to the historical
/// layout (a `std::vector<std::string>` plus an `unordered_map` keyed by a
/// second copy of every string), each term's text is stored once, with
/// ~24 bytes of fixed per-term metadata instead of two `std::string`
/// headers plus a hash-map node.
///
/// Slices: the dictionary is split into `num_slices` share-nothing slices
/// routed by term hash, each owning its own arena, span table, index and
/// free list. Ids interleave — `id = local * num_slices + slice` — so ids
/// from different slices stay globally unique and comparable, and with one
/// slice (the default) id assignment is exactly the unsliced dictionary's.
/// The online store sizes the slice count to its shard count so per-slice
/// arenas grow independently; interning remains single-writer (the
/// injector) because a term's slice is its hash, not its triple's shard.
///
/// Concurrent reads: `Lookup`/`TermOf`/`Contains` are safe to call from
/// any number of reader threads while the single writer interns. Spans
/// live in a `StableVector` (addresses never move), spans point straight
/// into arena chunk storage (readers never touch the chunk table), and
/// the probe index is a heap table of atomic slots republished wholesale
/// on growth — a reader sees a term exactly when the writer's release
/// store of its slot has been observed.
///
/// `string_view`s returned by `TermOf` point into the arena and stay valid
/// for as long as the term is live (chunks never move or shrink); the
/// bytes of a term whose refcount reached zero may be overwritten when its
/// id is recycled.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/stable_vector.h"
#include "common/status.h"
#include "rdf/triple.h"

namespace dskg::rdf {

/// Interns term strings, assigning dense ids 0, 1, 2, ... in first-seen
/// order (interleaved across slices when `num_slices > 1`). Lookup is O(1)
/// expected in both directions and allocation-free.
///
/// Terms are usage-counted for the online-update path: every stored triple
/// occurrence `Retain`s its three ids, deletion `Release`s them, and a term
/// whose count drops to zero is forgotten — its id joins the free list and
/// is recycled by the next `Intern` (LIFO, so id assignment is a
/// deterministic function of the operation sequence). The freed id keeps
/// its arena extent: a recycled term whose text fits the old extent is
/// written in place, so churn at a steady term population stops growing
/// the arena. Ids retained at least once are stable for as long as any
/// triple uses them.
///
/// Deferred reclamation (`SetDeferredReclaim(true)`, the online store's
/// mode): a zero-refcount term is not erased immediately — concurrent
/// epoch-pinned readers may still look it up or read its text. Instead it
/// retires in two stages driven by `ReclaimDeferred()`, which the store
/// calls once per batch *after* its epoch drain: the first call tombstones
/// the term's index slot (lookups stop finding it; a term re-interned
/// before this resurrects with its old id, matching the serial path's
/// LIFO-recycled assignment); the second returns the id to the free list
/// and lets its text bytes be overwritten. Offline (the default), a
/// zero-refcount term is erased and recycled immediately — the exact
/// historical semantics.
class Dictionary {
 public:
  explicit Dictionary(int num_slices = 1)
      : slices_(static_cast<size_t>(num_slices < 1 ? 1 : num_slices)) {}

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = delete;
  Dictionary& operator=(Dictionary&&) = delete;

  ~Dictionary() {
    for (Slice& s : slices_) delete s.table.load(std::memory_order_relaxed);
  }

  /// Number of share-nothing hash slices.
  int num_slices() const { return static_cast<int>(slices_.size()); }

  /// Switches between immediate (offline, default) and epoch-deferred
  /// (online) reclamation of zero-refcount terms. Toggle only while
  /// quiescent with no zombies outstanding.
  void SetDeferredReclaim(bool on) { deferred_ = on; }

  /// Pre-sizes the id tables, hash indexes and text arenas — the
  /// bulk-load / rebuild path (`Dataset::Clone`) passes the source's
  /// exact totals so the rebuild performs O(chunks) allocations instead
  /// of growing incrementally. An allocation hint only; never shrinks.
  void Reserve(size_t num_terms, uint64_t total_text_bytes) {
    const size_t per_terms = num_terms / slices_.size();
    const uint64_t per_bytes = total_text_bytes / slices_.size();
    for (Slice& s : slices_) {
      s.spans.reserve(per_terms);
      s.refs.reserve(per_terms);
      size_t want_slots = 16;
      while (want_slots * 7 < per_terms * 10) want_slots *= 2;
      const SlotTable* t = s.table.load(std::memory_order_relaxed);
      if (t == nullptr || want_slots > t->size) Rehash(&s, want_slots);
      if (per_bytes > 0) ReserveArena(&s, per_bytes);
    }
  }

  /// Returns the id for `term`, interning it if new (recycled ids first).
  /// Allocation-free on hit (heterogeneous `string_view` probe of the
  /// open-addressing index). Single writer.
  TermId Intern(std::string_view term) {
    const uint64_t hash = HashTerm(term);
    Slice& sl = slices_[hash % slices_.size()];
    const TermId found = FindLocal(sl, term, hash);
    if (found != kInvalidTermId) {
      // May be a hit on a stage-one zombie (deferred mode): the term
      // resurrects with its old id — exactly the id the serial path's
      // LIFO recycling would reassign. `ReclaimDeferred` skips it once
      // the caller's `Retain` lands.
      return ToGlobal(sl, found);
    }
    TermId local;
    if (!sl.free_local.empty()) {
      local = sl.free_local.back();
      sl.free_local.pop_back();
      WriteSpan(&sl, &sl.spans[local], term);
    } else {
      local = static_cast<TermId>(sl.spans.size());
      Span& s = sl.spans.emplace_back();
      WriteSpan(&sl, &s, term);
      sl.refs.push_back(0);
    }
    InsertSlot(&sl, local, hash);
    sl.bytes += term.size();
    return ToGlobal(sl, local);
  }

  /// Records one usage of `id` (callers: one per triple occurrence).
  void Retain(TermId id) {
    Slice& sl = SliceOf(id);
    const TermId local = ToLocal(id);
    if (local < sl.refs.size()) ++sl.refs[local];
  }

  /// Releases one usage of `id`. At zero the term is forgotten: `Lookup`
  /// stops finding it (immediately offline; after the next
  /// `ReclaimDeferred` online), its text bytes become reusable, and the
  /// id joins the free list. Unretained or already-free ids are ignored.
  void Release(TermId id) {
    Slice& sl = SliceOf(id);
    const TermId local = ToLocal(id);
    if (local >= sl.refs.size() || sl.refs[local] == 0) return;
    if (--sl.refs[local] > 0) return;
    if (deferred_) {
      // Leave slot, span and byte accounting intact: epoch-pinned readers
      // may still find the term, and a same-window re-intern resurrects
      // it. `ReclaimDeferred` finishes the job after the drain.
      sl.zombies_stage1.push_back(local);
      return;
    }
    Span& s = sl.spans[local];
    EraseSlot(&sl, local, HashTerm(TextOf(s)));
    sl.bytes -= s.len;
    s.len = 0;  // TermOf of a freed id reads as empty; extent kept for reuse
    sl.free_local.push_back(local);
  }

  /// Deferred-mode reclamation step; call once per update batch, after
  /// the epoch protocol proves the batch's readers drained. Stage one
  /// tombstones the index slots of terms released in the just-drained
  /// window (skipping any that were re-interned meanwhile); stage two
  /// recycles the ids tombstoned by the *previous* call, whose text no
  /// published state can reach any more. Also frees index tables retired
  /// by growth.
  void ReclaimDeferred() {
    for (Slice& sl : slices_) {
      for (const TermId local : sl.zombies_stage2) {
        sl.spans[local].len = 0;
        sl.free_local.push_back(local);
      }
      sl.zombies_stage2.clear();
      for (const TermId local : sl.zombies_stage1) {
        if (sl.refs[local] > 0) continue;  // resurrected; still live
        Span& s = sl.spans[local];
        TombstoneSlot(&sl, local, HashTerm(TextOf(s)));
        sl.bytes -= s.len;
        sl.zombies_stage2.push_back(local);
      }
      sl.zombies_stage1.clear();
      sl.retired_tables.clear();
    }
  }

  /// Current usage count of `id` (0 for unretained or freed ids).
  uint64_t RefCount(TermId id) const {
    const Slice& sl = SliceOf(id);
    const TermId local = ToLocal(id);
    return local < sl.refs.size() ? sl.refs[local] : 0;
  }

  /// Number of freed ids awaiting reuse.
  size_t free_ids() const {
    size_t n = 0;
    for (const Slice& sl : slices_) n += sl.free_local.size();
    return n;
  }

  /// Returns the id for `term` if present, `kInvalidTermId` otherwise.
  /// Allocation-free (heterogeneous `string_view` probe); safe against a
  /// concurrent writer.
  TermId Lookup(std::string_view term) const {
    const uint64_t hash = HashTerm(term);
    const Slice& sl = slices_[hash % slices_.size()];
    const TermId local = FindLocal(sl, term, hash);
    return local == kInvalidTermId ? kInvalidTermId : ToGlobal(sl, local);
  }

  /// True if `term` has been interned.
  bool Contains(std::string_view term) const {
    return Lookup(term) != kInvalidTermId;
  }

  /// Returns the text for `id` as a view into the arena. Requires a
  /// previously assigned id. Valid while the term stays live (freed ids
  /// read as empty until recycled; recycling may overwrite the bytes).
  std::string_view TermOf(TermId id) const {
    const Slice& sl = SliceOf(id);
    return TextOf(sl.spans[ToLocal(id)]);
  }

  /// Returns the string for `id` or an error if out of range.
  Result<std::string> TermOfChecked(TermId id) const {
    const Slice& sl = SliceOf(id);
    const TermId local = ToLocal(id);
    if (local >= sl.spans.size()) {
      return Status::NotFound("term id " + std::to_string(id) +
                              " not in dictionary of size " +
                              std::to_string(size()));
    }
    return std::string(TextOf(sl.spans[local]));
  }

  /// Size of the id space (live terms plus freed slots awaiting reuse).
  /// With several slices this counts assigned ids, whose *values*
  /// interleave (an id may exceed `size()` when slices are unbalanced).
  size_t size() const {
    size_t n = 0;
    for (const Slice& sl : slices_) n += sl.spans.size();
    return n;
  }

  /// Total bytes of interned term text (used for size reporting).
  uint64_t text_bytes() const {
    uint64_t n = 0;
    for (const Slice& sl : slices_) n += sl.bytes;
    return n;
  }

  /// Bytes allocated for arena chunks (includes reusable freed extents
  /// and chunk tails). Deterministic for a given operation sequence.
  uint64_t arena_bytes() const {
    uint64_t n = 0;
    for (const Slice& sl : slices_) n += sl.arena_bytes;
    return n;
  }

  /// Total storage-tier footprint: arena chunks plus span/refcount/index
  /// tables. Deterministic for a given operation sequence (counts table
  /// sizes, not vector capacities).
  uint64_t MemoryBytes() const {
    uint64_t n = 0;
    for (const Slice& sl : slices_) {
      const SlotTable* t = sl.table.load(std::memory_order_relaxed);
      n += sl.arena_bytes + sl.spans.size() * sizeof(Span) +
           sl.refs.size() * sizeof(uint64_t) +
           (t != nullptr ? t->size : 0) * sizeof(TermId) +
           sl.free_local.size() * sizeof(TermId);
    }
    return n;
  }

  // ---- persistence (the snapshot tier's arena codec) ------------------------

  /// Appends every slice — arena chunks, spans (as chunk-relative
  /// extents), refcounts, the free list and both zombie stages — to `out`
  /// in the snapshot wire format. Id assignment is position-based, so a
  /// restored dictionary recycles, resurrects and tombstones exactly like
  /// the original: same ids for the same future operation sequence. The
  /// probe index is *not* serialized (it is rebuilt on load); retired
  /// index tables are reader-epoch state and die with the process.
  Status SerializeTo(std::string* out) const {
    PutU32(out, static_cast<uint32_t>(slices_.size()));
    for (const Slice& sl : slices_) {
      PutU32(out, static_cast<uint32_t>(sl.chunks.size()));
      for (const Chunk& c : sl.chunks) {
        PutU32(out, c.cap);
        PutU32(out, c.used);
        PutBytes(out, c.data.get(), c.used);
      }
      // Chunk starts ascending by address for extent -> chunk resolution.
      std::vector<std::pair<const char*, uint32_t>> starts;
      starts.reserve(sl.chunks.size());
      for (uint32_t i = 0; i < sl.chunks.size(); ++i) {
        starts.emplace_back(sl.chunks[i].data.get(), i);
      }
      std::sort(starts.begin(), starts.end());
      PutU64(out, sl.spans.size());
      for (size_t i = 0; i < sl.spans.size(); ++i) {
        const Span& s = sl.spans[i];
        if (s.cap == 0) {
          PutU32(out, 0xFFFFFFFFu);  // no extent (empty term / fresh slot)
          PutU32(out, 0);
        } else {
          auto it = std::upper_bound(
              starts.begin(), starts.end(),
              std::make_pair(static_cast<const char*>(s.ptr), ~0u));
          const auto& [start, chunk_idx] = *--it;
          PutU32(out, chunk_idx);
          PutU32(out, static_cast<uint32_t>(s.ptr - start));
        }
        PutU32(out, s.len);
        PutU32(out, s.cap);
      }
      for (size_t i = 0; i < sl.refs.size(); ++i) PutU64(out, sl.refs[i]);
      const auto put_ids = [out](const std::vector<TermId>& ids) {
        PutU64(out, ids.size());
        for (const TermId id : ids) PutU64(out, id);
      };
      put_ids(sl.free_local);
      put_ids(sl.zombies_stage1);
      put_ids(sl.zombies_stage2);
      PutU64(out, sl.bytes);
    }
    return Status::OK();
  }

  /// Restores a `SerializeTo` image into this (freshly constructed)
  /// dictionary and rebuilds each slice's probe index from the live local
  /// ids (everything except free-listed and stage-two-tombstoned slots —
  /// stage-one zombies are still findable, matching the crash-time
  /// semantics). The slice count must match construction: id interleaving
  /// depends on it.
  Status DeserializeFrom(ByteReader* in) {
    uint32_t num_slices = 0;
    DSKG_RETURN_NOT_OK(in->ReadU32(&num_slices));
    if (num_slices != slices_.size()) {
      return Status::InvalidArgument(
          "dictionary image has " + std::to_string(num_slices) +
          " slices, store configured for " + std::to_string(slices_.size()));
    }
    for (Slice& sl : slices_) {
      if (!sl.spans.empty() || !sl.chunks.empty()) {
        return Status::FailedPrecondition(
            "dictionary restore target is not empty");
      }
      uint32_t num_chunks = 0;
      DSKG_RETURN_NOT_OK(in->ReadU32(&num_chunks));
      sl.chunks.reserve(num_chunks);
      for (uint32_t i = 0; i < num_chunks; ++i) {
        uint32_t cap = 0, used = 0;
        DSKG_RETURN_NOT_OK(in->ReadU32(&cap));
        DSKG_RETURN_NOT_OK(in->ReadU32(&used));
        if (used > cap || used > in->remaining()) {
          return Status::IoError("dictionary image: bad chunk extent");
        }
        Chunk c{std::make_unique<char[]>(cap), cap, used};
        DSKG_RETURN_NOT_OK(in->ReadBytes(c.data.get(), used));
        sl.arena_bytes += cap;
        sl.chunks.push_back(std::move(c));
      }
      uint64_t num_spans = 0;
      DSKG_RETURN_NOT_OK(in->ReadU64(&num_spans));
      // Each span occupies 16 bytes plus an 8-byte refcount downstream.
      if (num_spans * 16 > in->remaining()) {
        return Status::IoError("dictionary image: span count overflow");
      }
      sl.spans.reserve(num_spans);
      for (uint64_t i = 0; i < num_spans; ++i) {
        uint32_t chunk_idx = 0, offset = 0;
        Span& s = sl.spans.emplace_back();
        DSKG_RETURN_NOT_OK(in->ReadU32(&chunk_idx));
        DSKG_RETURN_NOT_OK(in->ReadU32(&offset));
        DSKG_RETURN_NOT_OK(in->ReadU32(&s.len));
        DSKG_RETURN_NOT_OK(in->ReadU32(&s.cap));
        if (chunk_idx == 0xFFFFFFFFu) {
          if (s.cap != 0 || s.len != 0) {
            return Status::IoError("dictionary image: extent-free span");
          }
          continue;
        }
        if (chunk_idx >= sl.chunks.size() || s.len > s.cap ||
            uint64_t{offset} + s.cap > sl.chunks[chunk_idx].used) {
          return Status::IoError("dictionary image: span out of chunk");
        }
        s.ptr = sl.chunks[chunk_idx].data.get() + offset;
      }
      sl.refs.resize(num_spans);
      for (uint64_t i = 0; i < num_spans; ++i) {
        DSKG_RETURN_NOT_OK(in->ReadU64(&sl.refs[i]));
      }
      const auto read_ids = [&](std::vector<TermId>* ids) {
        uint64_t n = 0;
        DSKG_RETURN_NOT_OK(in->ReadU64(&n));
        if (n > num_spans) {
          return Status::IoError("dictionary image: id list overflow");
        }
        ids->reserve(n);
        for (uint64_t i = 0; i < n; ++i) {
          TermId id = kInvalidTermId;
          DSKG_RETURN_NOT_OK(in->ReadU64(&id));
          if (id >= num_spans) {
            return Status::IoError("dictionary image: local id out of range");
          }
          ids->push_back(id);
        }
        return Status::OK();
      };
      DSKG_RETURN_NOT_OK(read_ids(&sl.free_local));
      DSKG_RETURN_NOT_OK(read_ids(&sl.zombies_stage1));
      DSKG_RETURN_NOT_OK(read_ids(&sl.zombies_stage2));
      DSKG_RETURN_NOT_OK(in->ReadU64(&sl.bytes));
      // Rebuild the probe index from the live ids (physical slot layout
      // differs from the original's — growth/tombstone history is gone —
      // but lookup results and future id assignment are identical).
      std::vector<bool> live(num_spans, true);
      for (const TermId id : sl.free_local) live[id] = false;
      for (const TermId id : sl.zombies_stage2) live[id] = false;
      size_t live_count = 0;
      for (uint64_t i = 0; i < num_spans; ++i) live_count += live[i];
      size_t want_slots = 16;
      while ((live_count + 1) * 10 > want_slots * 7) want_slots *= 2;
      Rehash(&sl, want_slots);
      for (uint64_t i = 0; i < num_spans; ++i) {
        if (!live[i]) continue;
        InsertSlot(&sl, static_cast<TermId>(i),
                   HashTerm(TextOf(sl.spans[i])));
      }
    }
    return Status::OK();
  }

 private:
  /// One term's extent in the arena. `ptr` aims straight at chunk storage
  /// so readers never touch the chunk table; `cap` is the extent's full
  /// size — a recycled id whose new text fits `cap` reuses the bytes in
  /// place.
  struct Span {
    char* ptr = nullptr;
    uint32_t len = 0;
    uint32_t cap = 0;
  };

  struct Chunk {
    std::unique_ptr<char[]> data;
    uint32_t cap = 0;
    uint32_t used = 0;
  };

  /// Published probe index: a power-of-two table of *local* ids. Replaced
  /// wholesale on growth (readers keep probing whichever table they
  /// loaded; superseded tables die after the epoch drain).
  struct SlotTable {
    explicit SlotTable(size_t n) : slots(new std::atomic<TermId>[n]), size(n) {
      for (size_t i = 0; i < n; ++i) {
        slots[i].store(kInvalidTermId, std::memory_order_relaxed);
      }
    }
    std::unique_ptr<std::atomic<TermId>[]> slots;
    size_t size;
  };

  /// Slot value marking a deferred-mode deletion: probes continue past it
  /// (unlike `kInvalidTermId`), and inserts never reuse it — the slot is
  /// compacted away by the next growth rehash.
  static constexpr TermId kTombstone = kInvalidTermId - 1;

  static constexpr uint32_t kChunkSize = 1 << 16;

  /// One share-nothing hash slice. All non-atomic state is single-writer.
  struct Slice {
    std::vector<Chunk> chunks;          ///< arena; chunk storage never moves
    StableVector<Span> spans;           ///< per-local-id text extent
    std::vector<uint64_t> refs;         ///< usage count per local id
    std::vector<TermId> free_local;     ///< recycled local ids, LIFO
    std::atomic<SlotTable*> table{nullptr};  ///< published probe index
    size_t occupied = 0;                ///< live + tombstoned slots
    uint64_t bytes = 0;                 ///< live text bytes
    uint64_t arena_bytes = 0;           ///< allocated chunk bytes
    std::vector<TermId> zombies_stage1;  ///< released, pre-drain
    std::vector<TermId> zombies_stage2;  ///< tombstoned, text still pinned
    std::vector<std::unique_ptr<SlotTable>> retired_tables;
  };

  Slice& SliceOf(TermId id) { return slices_[id % slices_.size()]; }
  const Slice& SliceOf(TermId id) const { return slices_[id % slices_.size()]; }
  TermId ToLocal(TermId id) const {
    return id / static_cast<TermId>(slices_.size());
  }
  TermId ToGlobal(const Slice& sl, TermId local) const {
    return local * static_cast<TermId>(slices_.size()) +
           static_cast<TermId>(&sl - slices_.data());
  }

  std::string_view TextOf(const Span& s) const {
    // Zero-length spans (the empty term, or a freed id awaiting reuse)
    // may reference no chunk at all — never dereference through them.
    if (s.len == 0) return {};
    return {s.ptr, s.len};
  }

  /// FNV-1a; self-contained so the probe order is platform-independent.
  static uint64_t HashTerm(std::string_view s) {
    uint64_t h = 1469598103934665603ULL;
    for (char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  /// Appends a chunk able to hold at least `min(need, ~4 GiB)` more
  /// bytes. Extents are 32-bit-sized, so one chunk cannot exceed 4 GiB —
  /// a `Reserve` hint beyond that gets the largest possible chunk and
  /// the remainder grows incrementally (never a silently tiny chunk).
  void ReserveArena(Slice* sl, uint64_t need) {
    const uint32_t cap = static_cast<uint32_t>(std::min<uint64_t>(
        std::max<uint64_t>(kChunkSize, need), 0xFFFFFFFFull));
    sl->chunks.push_back({std::make_unique<char[]>(cap), cap, 0});
    sl->arena_bytes += cap;
  }

  /// Places `term`'s bytes: in the span's existing extent when it fits
  /// (the recycle path), else in fresh arena space. The span is only
  /// published to readers afterwards (release store of its slot).
  void WriteSpan(Slice* sl, Span* s, std::string_view term) {
    const uint32_t len = static_cast<uint32_t>(term.size());
    if (len == 0) {
      s->len = 0;  // the empty term needs no extent (see TextOf)
      return;
    }
    if (len > s->cap) {
      if (sl->chunks.empty() ||
          sl->chunks.back().cap - sl->chunks.back().used < len) {
        ReserveArena(sl, len);
      }
      Chunk& c = sl->chunks.back();
      s->ptr = c.data.get() + c.used;
      s->cap = len;
      c.used += len;
    }
    s->len = len;
    std::copy(term.begin(), term.end(), s->ptr);
  }

  // ---- open-addressing forward index (linear probing) ---------------------

  TermId FindLocal(const Slice& sl, std::string_view term,
                   uint64_t hash) const {
    const SlotTable* t = sl.table.load(std::memory_order_acquire);
    if (t == nullptr) return kInvalidTermId;
    const size_t mask = t->size - 1;
    size_t i = hash & mask;
    for (;;) {
      const TermId local = t->slots[i].load(std::memory_order_acquire);
      if (local == kInvalidTermId) return kInvalidTermId;
      if (local != kTombstone && TextOf(sl.spans[local]) == term) return local;
      i = (i + 1) & mask;
    }
  }

  /// Builds and publishes a fresh table of `new_size` slots (compacting
  /// tombstones away). The superseded table stays probe-safe for readers
  /// that already loaded it: retired under deferred reclamation, deleted
  /// immediately offline (no concurrent readers exist there).
  void Rehash(Slice* sl, size_t new_size) {
    SlotTable* old = sl->table.load(std::memory_order_relaxed);
    auto fresh = std::make_unique<SlotTable>(new_size);
    size_t live = 0;
    if (old != nullptr) {
      const size_t mask = new_size - 1;
      for (size_t i = 0; i < old->size; ++i) {
        const TermId local = old->slots[i].load(std::memory_order_relaxed);
        if (local == kInvalidTermId || local == kTombstone) continue;
        size_t j = HashTerm(TextOf(sl->spans[local])) & mask;
        while (fresh->slots[j].load(std::memory_order_relaxed) !=
               kInvalidTermId) {
          j = (j + 1) & mask;
        }
        fresh->slots[j].store(local, std::memory_order_relaxed);
        ++live;
      }
    }
    sl->occupied = live;
    sl->table.store(fresh.release(), std::memory_order_release);
    if (old != nullptr) {
      if (deferred_) {
        sl->retired_tables.emplace_back(old);
      } else {
        delete old;
      }
    }
  }

  void InsertSlot(Slice* sl, TermId local, uint64_t hash) {
    SlotTable* t = sl->table.load(std::memory_order_relaxed);
    if (t == nullptr || (sl->occupied + 1) * 10 > t->size * 7) {
      Rehash(sl, t == nullptr ? 16 : t->size * 2);
      t = sl->table.load(std::memory_order_relaxed);
    }
    const size_t mask = t->size - 1;
    size_t i = hash & mask;
    // Never reuse a tombstone: readers mid-probe rely on the slot's value
    // only ever going live -> tombstone until the next table swap.
    while (t->slots[i].load(std::memory_order_relaxed) != kInvalidTermId) {
      i = (i + 1) & mask;
    }
    t->slots[i].store(local, std::memory_order_release);
    ++sl->occupied;
  }

  /// Backward-shift deletion (offline mode only): no tombstones, so the
  /// load factor only counts live entries and probe chains stay short
  /// under churn. Unsafe against concurrent readers — deferred mode uses
  /// `TombstoneSlot` instead.
  void EraseSlot(Slice* sl, TermId local, uint64_t hash) {
    SlotTable* t = sl->table.load(std::memory_order_relaxed);
    if (t == nullptr) return;
    const size_t mask = t->size - 1;
    const auto at = [&](size_t i) {
      return t->slots[i].load(std::memory_order_relaxed);
    };
    size_t i = hash & mask;
    while (at(i) != local) {
      if (at(i) == kInvalidTermId) return;  // not indexed (defensive)
      i = (i + 1) & mask;
    }
    size_t hole = i;
    size_t j = (i + 1) & mask;
    while (at(j) != kInvalidTermId) {
      const size_t ideal = HashTerm(TextOf(sl->spans[at(j)])) & mask;
      // slots[j] may fill the hole iff its probe path [ideal, j) passes
      // through the hole (cyclically).
      const bool reaches = ideal <= j ? (ideal <= hole && hole < j)
                                      : (hole >= ideal || hole < j);
      if (reaches) {
        t->slots[hole].store(at(j), std::memory_order_relaxed);
        hole = j;
      }
      j = (j + 1) & mask;
    }
    t->slots[hole].store(kInvalidTermId, std::memory_order_relaxed);
    --sl->occupied;
  }

  /// Deferred-mode deletion: marks the slot dead without disturbing the
  /// probe chains concurrent readers are walking. The slot stays counted
  /// in `occupied` until a growth rehash compacts it away.
  void TombstoneSlot(Slice* sl, TermId local, uint64_t hash) {
    SlotTable* t = sl->table.load(std::memory_order_relaxed);
    if (t == nullptr) return;
    const size_t mask = t->size - 1;
    size_t i = hash & mask;
    for (;;) {
      const TermId cur = t->slots[i].load(std::memory_order_relaxed);
      if (cur == local) break;
      if (cur == kInvalidTermId) return;  // not indexed (defensive)
      i = (i + 1) & mask;
    }
    t->slots[i].store(kTombstone, std::memory_order_release);
  }

  std::vector<Slice> slices_;
  bool deferred_ = false;
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_DICTIONARY_H_
