#include "rdf/dataset.h"

#include <algorithm>
#include <type_traits>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dskg::rdf {

namespace {
// Footprint model: three 8-byte ids per triple plus an amortized share of
// dictionary text. Matches the scale of on-disk triple tables closely
// enough for budget accounting, which is all it is used for.
constexpr uint64_t kBytesPerTriple = 3 * sizeof(TermId) + 8;
}  // namespace

Triple Dataset::Add(std::string_view s, std::string_view p,
                    std::string_view o) {
  Triple t{dict_->Intern(s), dict_->Intern(p), dict_->Intern(o)};
  Add(t);
  return t;
}

void Dataset::Add(const Triple& t) {
  triples_.push_back(t);
  dict_->Retain(t.subject);
  dict_->Retain(t.predicate);
  dict_->Retain(t.object);
  PartitionStats& st = partition_stats_[t.predicate];
  st.predicate = t.predicate;
  st.num_triples += 1;
  st.bytes += kBytesPerTriple;
}

uint64_t Dataset::RemoveBatch(
    const std::unordered_set<Triple, TripleHash>& batch) {
  if (batch.empty() || triples_.empty()) return 0;
  uint64_t removed = 0;
  auto out = triples_.begin();
  for (const Triple& t : triples_) {
    if (batch.find(t) == batch.end()) {
      *out++ = t;
      continue;
    }
    ++removed;
    dict_->Release(t.subject);
    dict_->Release(t.predicate);
    dict_->Release(t.object);
    auto st = partition_stats_.find(t.predicate);
    st->second.num_triples -= 1;
    st->second.bytes -= kBytesPerTriple;
    if (st->second.num_triples == 0) partition_stats_.erase(st);
  }
  triples_.erase(out, triples_.end());
  return removed;
}

Dataset Dataset::Clone(int dict_slices) const {
  Dataset out(dict_slices);
  // Pre-size the clone's dictionary (id table, hash index, one arena
  // chunk of exactly the source's text bytes) and triple list: rebuilds —
  // the OnlineStore constructor in particular — run O(chunks)
  // allocations instead of growing every table.
  out.dict_->Reserve(dict_->size(), dict_->text_bytes());
  out.triples_.reserve(triples_.size());
  for (const Triple& t : triples_) {
    out.Add(dict_->TermOf(t.subject), dict_->TermOf(t.predicate),
            dict_->TermOf(t.object));
  }
  return out;
}

size_t Dataset::CountDistinctSubjectsObjects() const {
  std::unordered_set<TermId> seen;
  seen.reserve(triples_.size());
  for (const Triple& t : triples_) {
    seen.insert(t.subject);
    seen.insert(t.object);
  }
  return seen.size();
}

Result<PartitionStats> Dataset::PartitionOf(TermId predicate) const {
  auto it = partition_stats_.find(predicate);
  if (it == partition_stats_.end()) {
    return Status::NotFound("no partition for predicate id " +
                            std::to_string(predicate));
  }
  return it->second;
}

std::vector<PartitionStats> Dataset::AllPartitions() const {
  std::vector<PartitionStats> out;
  out.reserve(partition_stats_.size());
  for (const auto& [_, st] : partition_stats_) out.push_back(st);
  return out;
}

std::vector<Triple> Dataset::TriplesWithPredicate(TermId predicate) const {
  std::vector<Triple> out;
  for (const Triple& t : triples_) {
    if (t.predicate == predicate) out.push_back(t);
  }
  return out;
}

uint64_t Dataset::EstimatedBytes() const {
  return triples_.size() * kBytesPerTriple + dict_->text_bytes();
}

// ---- persistence ------------------------------------------------------------

Status Dataset::SerializeTo(std::string* out) const {
  PutU64(out, triples_.size());
  static_assert(std::is_trivially_copyable_v<Triple>);
  PutBytes(out, triples_.data(), triples_.size() * sizeof(Triple));
  // Sorted by predicate id: the image is deterministic for a given
  // logical state (golden snapshot fixtures depend on stable bytes).
  std::vector<std::pair<TermId, PartitionStats>> stats(
      partition_stats_.begin(), partition_stats_.end());
  std::sort(stats.begin(), stats.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  PutU64(out, stats.size());
  for (const auto& [pred, st] : stats) {
    PutU64(out, pred);
    PutU64(out, st.num_triples);
    PutU64(out, st.bytes);
  }
  return dict_->SerializeTo(out);
}

Status Dataset::DeserializeFrom(ByteReader* in) {
  if (!triples_.empty() || !partition_stats_.empty()) {
    return Status::FailedPrecondition("dataset restore target is not empty");
  }
  uint64_t num_triples = 0;
  DSKG_RETURN_NOT_OK(in->ReadU64(&num_triples));
  if (num_triples * sizeof(Triple) > in->remaining()) {
    return Status::IoError("dataset image: triple count overflow");
  }
  triples_.resize(num_triples);
  DSKG_RETURN_NOT_OK(
      in->ReadBytes(triples_.data(), num_triples * sizeof(Triple)));
  uint64_t num_partitions = 0;
  DSKG_RETURN_NOT_OK(in->ReadU64(&num_partitions));
  if (num_partitions * 24 > in->remaining()) {
    return Status::IoError("dataset image: partition count overflow");
  }
  for (uint64_t i = 0; i < num_partitions; ++i) {
    PartitionStats st;
    DSKG_RETURN_NOT_OK(in->ReadU64(&st.predicate));
    DSKG_RETURN_NOT_OK(in->ReadU64(&st.num_triples));
    DSKG_RETURN_NOT_OK(in->ReadU64(&st.bytes));
    partition_stats_[st.predicate] = st;
  }
  return dict_->DeserializeFrom(in);
}

}  // namespace dskg::rdf
