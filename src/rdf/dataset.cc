#include "rdf/dataset.h"

#include <unordered_set>

namespace dskg::rdf {

namespace {
// Footprint model: three 8-byte ids per triple plus an amortized share of
// dictionary text. Matches the scale of on-disk triple tables closely
// enough for budget accounting, which is all it is used for.
constexpr uint64_t kBytesPerTriple = 3 * sizeof(TermId) + 8;
}  // namespace

Triple Dataset::Add(std::string_view s, std::string_view p,
                    std::string_view o) {
  Triple t{dict_->Intern(s), dict_->Intern(p), dict_->Intern(o)};
  Add(t);
  return t;
}

void Dataset::Add(const Triple& t) {
  triples_.push_back(t);
  PartitionStats& st = partition_stats_[t.predicate];
  st.predicate = t.predicate;
  st.num_triples += 1;
  st.bytes += kBytesPerTriple;
}

size_t Dataset::CountDistinctSubjectsObjects() const {
  std::unordered_set<TermId> seen;
  seen.reserve(triples_.size());
  for (const Triple& t : triples_) {
    seen.insert(t.subject);
    seen.insert(t.object);
  }
  return seen.size();
}

Result<PartitionStats> Dataset::PartitionOf(TermId predicate) const {
  auto it = partition_stats_.find(predicate);
  if (it == partition_stats_.end()) {
    return Status::NotFound("no partition for predicate id " +
                            std::to_string(predicate));
  }
  return it->second;
}

std::vector<PartitionStats> Dataset::AllPartitions() const {
  std::vector<PartitionStats> out;
  out.reserve(partition_stats_.size());
  for (const auto& [_, st] : partition_stats_) out.push_back(st);
  return out;
}

std::vector<Triple> Dataset::TriplesWithPredicate(TermId predicate) const {
  std::vector<Triple> out;
  for (const Triple& t : triples_) {
    if (t.predicate == predicate) out.push_back(t);
  }
  return out;
}

uint64_t Dataset::EstimatedBytes() const {
  return triples_.size() * kBytesPerTriple + dict_->text_bytes();
}

}  // namespace dskg::rdf
