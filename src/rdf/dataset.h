#ifndef DSKG_RDF_DATASET_H_
#define DSKG_RDF_DATASET_H_

/// \file dataset.h
/// An in-memory knowledge graph: a dictionary plus a bag of triples, with
/// per-predicate partition statistics.
///
/// "Triple partition" follows the paper's definition (§3.2): the set of all
/// triples sharing one predicate. Partitions are the unit DOTIL transfers
/// between the relational and graph stores, so the dataset maintains their
/// sizes incrementally as triples are added.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace dskg::rdf {

/// Statistics of one predicate partition.
struct PartitionStats {
  TermId predicate = kInvalidTermId;
  uint64_t num_triples = 0;
  /// Estimated storage footprint in bytes (3 ids + term-text amortization).
  uint64_t bytes = 0;
};

/// A knowledge graph held in memory.
class Dataset {
 public:
  /// `dict_slices` shards the dictionary's arenas by term hash (the
  /// online store passes its shard count); one slice — the default — is
  /// the exact unsliced layout and id assignment.
  explicit Dataset(int dict_slices = 1)
      : dict_(std::make_unique<Dictionary>(dict_slices)) {}

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Adds a triple given term strings, interning them as needed. Each
  /// added occurrence retains its three term ids in the dictionary.
  Triple Add(std::string_view s, std::string_view p, std::string_view o);

  /// Adds an already-encoded triple. Ids must come from `dict()`.
  void Add(const Triple& t);

  /// Removes every stored occurrence of each triple in `batch` in one
  /// stable O(|G| + |batch|) sweep, releasing the removed occurrences'
  /// term ids (terms with no remaining uses are reclaimed — see
  /// `Dictionary::Release`). Returns the number of occurrences removed.
  /// The online applier calls this once per update batch.
  uint64_t RemoveBatch(const std::unordered_set<Triple, TripleHash>& batch);

  /// Deep copy: a new dataset with its own dictionary (of `dict_slices`
  /// slices), built by re-adding this dataset's triples in insertion
  /// order. Term ids are assigned in first-occurrence order, so two
  /// same-slice-count clones of the same dataset are id-identical to each
  /// other; with one slice, ids match the source's unless the source
  /// interned terms that no triple uses.
  Dataset Clone(int dict_slices = 1) const;

  /// All triples, in insertion order.
  const std::vector<Triple>& triples() const { return triples_; }

  /// The term dictionary.
  const Dictionary& dict() const { return *dict_; }
  Dictionary& mutable_dict() { return *dict_; }

  uint64_t num_triples() const { return triples_.size(); }

  /// Number of distinct predicates seen (the paper's #-P column).
  size_t num_predicates() const { return partition_stats_.size(); }

  /// Number of distinct subjects-or-objects (the paper's #-S∪O column).
  /// Computed on demand: O(|G|).
  size_t CountDistinctSubjectsObjects() const;

  /// Stats of the partition of `predicate`, or NotFound.
  Result<PartitionStats> PartitionOf(TermId predicate) const;

  /// Stats for every partition, ordered by predicate id.
  std::vector<PartitionStats> AllPartitions() const;

  /// All triples whose predicate is `predicate` (O(|G|) scan; partition
  /// extraction during migration goes through the relational store's
  /// POS index instead, this is a convenience for tests/tools).
  std::vector<Triple> TriplesWithPredicate(TermId predicate) const;

  /// Estimated total dataset footprint in bytes (budget model: a fixed
  /// per-triple charge plus live term text; used for partition budgets).
  uint64_t EstimatedBytes() const;

  /// Exact storage bytes of the triple list plus the dictionary's arena,
  /// span, refcount and index tables. Deterministic for a given operation
  /// sequence — the bench baselines track this as part of bytes/triple.
  uint64_t StorageBytes() const {
    return triples_.size() * sizeof(Triple) + dict_->MemoryBytes();
  }

  // ---- persistence (the snapshot tier) ----------------------------------

  /// Appends the triple list, partition statistics and the dictionary
  /// image (see `Dictionary::SerializeTo`) to `out`.
  Status SerializeTo(std::string* out) const;

  /// Restores a `SerializeTo` image into this (freshly constructed)
  /// dataset. The dictionary's slice count must match construction. The
  /// image carries the dictionary's refcounts, so triples are restored
  /// *without* re-retaining their ids — unlike `Add`, this reproduces the
  /// saved state bit for bit.
  Status DeserializeFrom(ByteReader* in);

 private:
  std::unique_ptr<Dictionary> dict_;
  std::vector<Triple> triples_;
  // Ordered map => AllPartitions() is deterministic without a sort.
  std::map<TermId, PartitionStats> partition_stats_;
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_DATASET_H_
