#include "rdf/ntriples.h"

#include <fstream>
#include <sstream>

#include "common/str_util.h"

namespace dskg::rdf {

Result<Dataset> NTriplesReader::Read(std::istream& in) {
  Dataset ds;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::string_view trimmed = TrimWhitespace(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::vector<std::string> parts = SplitString(trimmed, " \t");
    // Accept both "s p o ." and "s p o".
    if (!parts.empty() && parts.back() == ".") parts.pop_back();
    if (parts.size() != 3) {
      return Status::ParseError("line " + std::to_string(lineno) +
                                ": expected 3 terms, got " +
                                std::to_string(parts.size()));
    }
    ds.Add(parts[0], parts[1], parts[2]);
  }
  return ds;
}

Result<Dataset> NTriplesReader::ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path + " for reading");
  return Read(in);
}

Status NTriplesWriter::Write(const Dataset& ds, std::ostream& out) {
  const Dictionary& dict = ds.dict();
  for (const Triple& t : ds.triples()) {
    out << dict.TermOf(t.subject) << ' ' << dict.TermOf(t.predicate) << ' '
        << dict.TermOf(t.object) << " .\n";
  }
  if (!out) return Status::IoError("write failed");
  return Status::OK();
}

Status NTriplesWriter::WriteFile(const Dataset& ds, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  return Write(ds, out);
}

}  // namespace dskg::rdf
