#ifndef DSKG_RDF_NTRIPLES_H_
#define DSKG_RDF_NTRIPLES_H_

/// \file ntriples.h
/// Line-oriented text I/O for datasets.
///
/// The format is a pragmatic N-Triples subset: one triple per line,
/// whitespace-separated `<subject> <predicate> <object> .` where terms are
/// written verbatim (no escaping — generator-produced terms contain no
/// whitespace). Lines starting with `#` are comments.

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "rdf/dataset.h"

namespace dskg::rdf {

/// Parses datasets from text.
class NTriplesReader {
 public:
  /// Reads all triples from `in` into a new dataset.
  static Result<Dataset> Read(std::istream& in);

  /// Reads a dataset from the file at `path`.
  static Result<Dataset> ReadFile(const std::string& path);
};

/// Serializes datasets to text.
class NTriplesWriter {
 public:
  /// Writes `ds` to `out`, one triple per line, terminated by " .".
  static Status Write(const Dataset& ds, std::ostream& out);

  /// Writes `ds` to the file at `path` (overwriting).
  static Status WriteFile(const Dataset& ds, const std::string& path);
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_NTRIPLES_H_
