#ifndef DSKG_RDF_TRIPLE_H_
#define DSKG_RDF_TRIPLE_H_

/// \file triple.h
/// Dictionary-encoded RDF triples.
///
/// All engines in DSKG operate on dense integer term ids produced by
/// `rdf::Dictionary`; strings only exist at the edges (parsing and report
/// printing). A triple is three 64-bit ids: subject, predicate, object.

#include <cstdint>
#include <functional>
#include <tuple>

namespace dskg::rdf {

/// Dense identifier of a term (IRI or literal) in a `Dictionary`.
using TermId = uint64_t;

/// Sentinel id meaning "no term" / "unknown".
inline constexpr TermId kInvalidTermId = ~0ULL;

/// One dictionary-encoded edge of the knowledge graph.
struct Triple {
  TermId subject = kInvalidTermId;
  TermId predicate = kInvalidTermId;
  TermId object = kInvalidTermId;

  friend bool operator==(const Triple&, const Triple&) = default;

  /// Lexicographic (S,P,O) order, the canonical sort order of a dataset.
  friend bool operator<(const Triple& a, const Triple& b) {
    return std::tie(a.subject, a.predicate, a.object) <
           std::tie(b.subject, b.predicate, b.object);
  }
};

/// Hash functor for `Triple`, usable with unordered containers.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    // 64-bit mix of the three components (xorshift-multiply rounds).
    uint64_t h = t.subject * 0x9e3779b97f4a7c15ULL;
    h ^= (t.predicate + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= (t.object + 0x94d049bb133111ebULL + (h << 6) + (h >> 2));
    h ^= h >> 31;
    return static_cast<size_t>(h);
  }
};

}  // namespace dskg::rdf

#endif  // DSKG_RDF_TRIPLE_H_
