// Live knowledge updates: the dual store's insert path. New facts go to
// the relational store immediately (cheap inserts — the reason the
// relational store remains primary); resident graph-store partitions are
// kept consistent through the slow native-insert path, and queries see
// new knowledge on both routes right away.
//
//   $ ./build/examples/knowledge_updates

#include <cstdio>

#include "core/dual_store.h"
#include "core/session.h"
#include "workload/generators.h"

using namespace dskg;

int main() {
  workload::Bio2RdfConfig gen;
  gen.target_triples = 60000;
  rdf::Dataset bio = workload::GenerateBio2Rdf(gen);
  std::printf("biomedical graph: %llu triples, %zu predicates\n\n",
              static_cast<unsigned long long>(bio.num_triples()),
              bio.num_predicates());

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = bio.num_triples() / 4;
  core::DualStore store(&bio, cfg);

  // Stage the interaction partitions in the graph store.
  CostMeter tuning;
  for (const char* pred : {"b2r:interactsWith", "b2r:hasFunction"}) {
    auto s = store.MigratePartition(bio.dict().Lookup(pred), &tuning);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }

  // A pathway-style query template: two-hop interaction neighborhoods of
  // proteins with a $function of interest. Prepared once through the
  // session; every function of interest is just a rebind. Its complex
  // subquery runs in the graph store; the second hop finishes in the
  // relational store (Case 2).
  core::Session session(&store);
  auto prepared = session.Prepare(
      "SELECT ?pa ?pc WHERE { "
      "  ?pa b2r:interactsWith ?pb . "
      "  ?pb b2r:interactsWith ?pc . "
      "  ?pa b2r:hasFunction $function . }");
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  if (auto s = prepared->Bind("function", "b2r:function_3"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  auto before = prepared->ExecuteAll();
  if (!before.ok()) {
    std::fprintf(stderr, "%s\n", before.status().ToString().c_str());
    return 1;
  }
  std::printf("before update: route=%s, %zu answer pairs\n",
              core::RouteName(before->route), before->result.NumRows());

  // Breaking news: a newly characterized protein with that function
  // interacts with two known hubs. Both touched partitions are resident,
  // so the graph copies are maintained too.
  CostMeter update_cost;
  Status updates[] = {
      store.Insert("b2r:protein_new", "b2r:hasFunction", "b2r:function_3",
                   &update_cost),
      store.Insert("b2r:protein_new", "b2r:interactsWith", "b2r:protein_0",
                   &update_cost),
      store.Insert("b2r:protein_new", "b2r:interactsWith", "b2r:protein_1",
                   &update_cost),
  };
  for (const Status& s : updates) {
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("inserted 3 facts: %.2f sim-us (relational insert + "
              "resident graph-partition maintenance)\n",
              update_cost.sim_micros());

  // The prepared plan re-validates by itself: inserts moved the store's
  // plan epoch, so this execution re-plans against the new state — no
  // caller-side cache invalidation, and the new facts are visible.
  auto after = prepared->ExecuteAll();
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  std::printf("after update : route=%s, %zu answer pairs (+%zu)\n",
              core::RouteName(after->route), after->result.NumRows(),
              after->result.NumRows() - before->result.NumRows());

  // The new protein shows up in the answers immediately.
  const rdf::TermId new_protein = bio.dict().Lookup("b2r:protein_new");
  size_t mentioning = 0;
  for (const auto row : after->result.Rows()) {
    if (row[0] == new_protein || row[1] == new_protein) ++mentioning;
  }
  std::printf("answer pairs involving the new protein: %zu\n", mentioning);
  return mentioning > 0 ? 0 : 1;
}
