// Quickstart: build a small knowledge graph, ask the paper's flagship
// complex query, and watch the dual store route it — first through the
// relational store (cold), then through the graph store after migrating
// the two partitions the query needs.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "core/dual_store.h"
#include "rdf/dataset.h"

using dskg::CostMeter;
using dskg::core::DualStore;
using dskg::core::DualStoreConfig;
using dskg::core::RouteName;

int main() {
  // 1. A hand-written knowledge graph: people, cities, advisors.
  dskg::rdf::Dataset kg;
  kg.Add("ex:ada", "ex:wasBornIn", "ex:london");
  kg.Add("ex:grace", "ex:wasBornIn", "ex:newyork");
  kg.Add("ex:alan", "ex:wasBornIn", "ex:london");
  kg.Add("ex:alonzo", "ex:wasBornIn", "ex:washington");
  kg.Add("ex:alan", "ex:hasAcademicAdvisor", "ex:alonzo");
  kg.Add("ex:ada", "ex:hasAcademicAdvisor", "ex:alan");  // same city!
  kg.Add("ex:grace", "ex:hasAcademicAdvisor", "ex:alonzo");
  kg.Add("ex:ada", "ex:hasGivenName", "ex:Ada");
  kg.Add("ex:grace", "ex:hasGivenName", "ex:Grace");
  kg.Add("ex:alan", "ex:hasGivenName", "ex:Alan");

  // 2. A dual store: the relational store absorbs the whole graph; the
  //    graph store (capacity: 6 triples) starts empty.
  DualStoreConfig config;
  config.graph_capacity_triples = 8;
  DualStore store(&kg, config);

  // 3. The flagship complex query: who was born in the same city as
  //    their academic advisor?
  const char* query =
      "SELECT ?name WHERE { "
      "  ?p ex:wasBornIn ?city . "
      "  ?p ex:hasAcademicAdvisor ?a . "
      "  ?a ex:wasBornIn ?city . "
      "  ?p ex:hasGivenName ?name . }";

  auto cold = store.Process(query);
  if (!cold.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 cold.status().ToString().c_str());
    return 1;
  }
  std::printf("cold store  : route=%-10s  %zu row(s), %.2f sim-us\n",
              RouteName(cold->route), cold->result.NumRows(),
              cold->total_micros());

  // 4. Migrate the two partitions the complex subquery needs (this is
  //    what DOTIL automates; see the academic_accelerator example).
  CostMeter tuning;
  for (const char* pred : {"ex:wasBornIn", "ex:hasAcademicAdvisor"}) {
    auto s = store.MigratePartition(kg.dict().Lookup(pred), &tuning);
    if (!s.ok()) {
      std::fprintf(stderr, "migration failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("tuning      : moved %llu triples into the graph store "
              "(%.2f sim-us, offline)\n",
              static_cast<unsigned long long>(store.graph().used_triples()),
              tuning.sim_micros());

  // 5. Same query, warm store: the complex subquery runs as a graph
  //    traversal; the name lookup stays relational (Case 2 of the
  //    paper's Algorithm 3).
  auto warm = store.Process(query);
  if (!warm.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 warm.status().ToString().c_str());
    return 1;
  }
  std::printf("warm store  : route=%-10s  %zu row(s), %.2f sim-us\n",
              RouteName(warm->route), warm->result.NumRows(),
              warm->total_micros());

  for (const auto row : warm->result.Rows()) {
    std::printf("  -> %s\n", kg.dict().TermOf(row[0]).c_str());
  }
  return 0;
}
