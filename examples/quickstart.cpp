// Quickstart: the Session API end to end. Build a small knowledge graph,
// prepare the paper's flagship complex query once (with a `$city`
// parameter), execute it with different bindings, watch the dual store
// re-route it after tuning — the prepared plan re-validates by itself —
// and stream the final result through a cursor.
//
//   $ ./build/examples/quickstart

#include <cstdio>
#include <string>

#include "core/dual_store.h"
#include "core/session.h"
#include "rdf/dataset.h"

using dskg::CostMeter;
using dskg::core::DualStore;
using dskg::core::DualStoreConfig;
using dskg::core::RouteName;
using dskg::core::Session;

int main() {
  // 1. A hand-written knowledge graph: people, cities, advisors.
  dskg::rdf::Dataset kg;
  kg.Add("ex:ada", "ex:wasBornIn", "ex:london");
  kg.Add("ex:grace", "ex:wasBornIn", "ex:newyork");
  kg.Add("ex:alan", "ex:wasBornIn", "ex:london");
  kg.Add("ex:alonzo", "ex:wasBornIn", "ex:washington");
  kg.Add("ex:alan", "ex:hasAcademicAdvisor", "ex:alonzo");
  kg.Add("ex:ada", "ex:hasAcademicAdvisor", "ex:alan");  // same city!
  kg.Add("ex:grace", "ex:hasAcademicAdvisor", "ex:alonzo");
  kg.Add("ex:ada", "ex:hasGivenName", "ex:Ada");
  kg.Add("ex:grace", "ex:hasGivenName", "ex:Grace");
  kg.Add("ex:alan", "ex:hasGivenName", "ex:Alan");

  // 2. A dual store and a session over it. The session owns the prepared-
  //    statement cache; `Prepare` parses, identifies the complex
  //    subquery, picks the route and slot-compiles ONCE.
  DualStoreConfig config;
  config.graph_capacity_triples = 8;
  DualStore store(&kg, config);
  Session session(&store);

  // 3. The flagship complex query, parameterized: who was born in $city
  //    together with their academic advisor?
  auto prepared = session.Prepare(
      "SELECT ?name WHERE { "
      "  ?p ex:wasBornIn $city . "
      "  ?p ex:hasAcademicAdvisor ?a . "
      "  ?a ex:wasBornIn $city . "
      "  ?p ex:hasGivenName ?name . }");
  if (!prepared.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 prepared.status().ToString().c_str());
    return 1;
  }

  // 4. Execute-many: rebinding the parameter re-uses the cached plan —
  //    no re-parse, no re-routing, no re-encoding.
  for (const char* city : {"ex:london", "ex:newyork"}) {
    if (auto s = prepared->Bind("city", city); !s.ok()) {
      std::fprintf(stderr, "bind failed: %s\n", s.ToString().c_str());
      return 1;
    }
    auto exec = prepared->ExecuteAll();
    if (!exec.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   exec.status().ToString().c_str());
      return 1;
    }
    std::printf("cold  $city=%-12s route=%-10s %zu row(s), %.2f sim-us\n",
                city, RouteName(exec->route), exec->result.NumRows(),
                exec->total_micros());
  }

  // 5. Migrate the two partitions the complex subquery needs (this is
  //    what DOTIL automates; see the academic_accelerator example). The
  //    store's plan epoch moves, so the prepared plan is now stale...
  CostMeter tuning;
  for (const char* pred : {"ex:wasBornIn", "ex:hasAcademicAdvisor"}) {
    auto s = store.MigratePartition(kg.dict().Lookup(pred), &tuning);
    if (!s.ok()) {
      std::fprintf(stderr, "migration failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("tuning: moved %llu triples into the graph store "
              "(%.2f sim-us, offline)\n",
              static_cast<unsigned long long>(store.graph().used_triples()),
              tuning.sim_micros());

  // 6. ...and the next execution transparently re-validates it: the
  //    complex subquery now runs as a graph traversal, the name lookup
  //    stays relational (Case 2 of the paper's Algorithm 3). This time,
  //    stream the result through a cursor instead of materializing it.
  if (auto s = prepared->Bind("city", "ex:london"); !s.ok()) {
    std::fprintf(stderr, "bind failed: %s\n", s.ToString().c_str());
    return 1;
  }
  auto cursor = prepared->OpenCursor();
  if (!cursor.ok()) {
    std::fprintf(stderr, "cursor failed: %s\n",
                 cursor.status().ToString().c_str());
    return 1;
  }
  std::printf("warm  $city=%-12s route=%-10s (streaming)\n", "ex:london",
              RouteName(cursor->route()));
  dskg::sparql::BindingTable chunk;
  bool done = false;
  size_t rows = 0;
  while (!done) {
    if (auto s = cursor->Next(&chunk, /*max_rows=*/2, &done); !s.ok()) {
      std::fprintf(stderr, "cursor failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (const auto row : chunk.Rows()) {
      std::printf("  -> %s\n", std::string(kg.dict().TermOf(row[0])).c_str());
      ++rows;
    }
  }
  const auto drained = cursor->Execution();
  std::printf("streamed %zu row(s), %.2f sim-us "
              "(graph %.2f + rel %.2f + migrate %.2f)\n",
              rows, drained.total_micros(), drained.graph_micros,
              drained.rel_micros, drained.migrate_micros);

  const Session::Stats stats = session.stats();
  std::printf("session: %llu prepare(s), %llu execution(s), "
              "%llu transparent replan(s)\n",
              static_cast<unsigned long long>(stats.prepares),
              static_cast<unsigned long long>(stats.executions),
              static_cast<unsigned long long>(stats.replans));
  return rows > 0 ? 0 : 1;
}
