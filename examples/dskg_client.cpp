// dskg_client: the serving-smoke oracle. Connects to a running
// dskg_server, regenerates the SAME deterministic dataset locally (same
// --triples/--seed), drives the YAGO template workload over the wire,
// and verifies every response — rows AND simulated charges — is
// bit-identical to a direct in-process core::Session execution of the
// same query. Also exercises the streaming FETCH path and scrapes the
// admin listener. Exits non-zero on any mismatch, which is exactly what
// the serving-smoke CI job hard-fails on.
//
//   $ ./build/examples/dskg_client --port 7687 --admin-port 7688

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/online_store.h"
#include "core/session.h"
#include "server/client.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/workload.h"

using dskg::core::OnlineStore;
using dskg::core::Session;
using dskg::server::Client;
using dskg::server::RowsResult;

namespace {

const char* FlagValue(const char* arg, const char* name, int argc,
                      char** argv, int* i) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return nullptr;
  if (arg[n] == '=') return arg + n + 1;
  if (arg[n] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

int Fail(const char* what, const dskg::Status& s) {
  std::fprintf(stderr, "dskg_client FAIL: %s: %s\n", what,
               s.ToString().c_str());
  return 1;
}

/// Renders the local oracle's execution into the wire shape (term text
/// rows) for exact comparison.
std::vector<std::vector<std::string>> OracleRows(
    const dskg::sparql::BindingTable& t, const dskg::rdf::Dictionary& dict) {
  std::vector<std::vector<std::string>> rows(t.NumRows());
  for (size_t r = 0; r < t.NumRows(); ++r) {
    rows[r].resize(t.NumColumns());
    for (size_t c = 0; c < t.NumColumns(); ++c) {
      rows[r][c] = std::string(dict.TermOf(t.At(r, c)));
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0, admin_port = 0, shards = 4, count = 0;
  uint64_t triples = 120000, seed = 1;
  std::string metrics_out;

  for (int i = 1; i < argc; ++i) {
    const char* v;
    if ((v = FlagValue(argv[i], "--port", argc, argv, &i))) {
      port = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--admin-port", argc, argv, &i))) {
      admin_port = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--shards", argc, argv, &i))) {
      shards = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--triples", argc, argv, &i))) {
      triples = std::strtoull(v, nullptr, 10);
    } else if ((v = FlagValue(argv[i], "--seed", argc, argv, &i))) {
      seed = std::strtoull(v, nullptr, 10);
    } else if ((v = FlagValue(argv[i], "--count", argc, argv, &i))) {
      count = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--metrics-out", argc, argv, &i))) {
      metrics_out = v;
    } else {
      std::fprintf(stderr,
                   "usage: dskg_client --port N [--admin-port N] [--shards N]"
                   " [--triples N] [--seed N] [--count N]"
                   " [--metrics-out PATH]\n");
      return 2;
    }
  }
  if (port == 0) {
    std::fprintf(stderr, "dskg_client: --port is required\n");
    return 2;
  }

  // The local oracle: the same dataset and store shape the server built.
  dskg::workload::YagoConfig ycfg;
  ycfg.seed = seed;
  ycfg.target_triples = triples;
  dskg::rdf::Dataset ds = dskg::workload::GenerateYago(ycfg);
  dskg::core::DualStoreConfig store_cfg;
  store_cfg.num_shards = shards;
  store_cfg.graph_capacity_triples = ds.num_triples() / 4;
  OnlineStore oracle_store(ds, store_cfg);
  Session oracle(&oracle_store);

  dskg::workload::WorkloadBuilder builder(&ds);
  auto workload = builder.Build("YAGO", dskg::workload::YagoTemplates(),
                                dskg::workload::WorkloadOptions{});
  if (!workload.ok()) return Fail("workload build", workload.status());
  std::vector<dskg::workload::WorkloadQuery> queries =
      std::move(workload->queries);
  if (count > 0 && static_cast<size_t>(count) < queries.size()) {
    queries.resize(count);
  }

  auto client_r = Client::Connect(static_cast<uint16_t>(port));
  if (!client_r.ok()) return Fail("connect", client_r.status());
  Client client = std::move(client_r).ValueOrDie();
  if (dskg::Status s = client.Ping(); !s.ok()) return Fail("ping", s);

  uint64_t checked = 0, rows_total = 0;
  uint32_t stmt_id = 0;
  std::string last_text;
  for (const dskg::workload::WorkloadQuery& q : queries) {
    // PREPARE once per template text (consecutive mutations share it).
    if (q.prepared_text != last_text) {
      ++stmt_id;
      auto params = client.Prepare(stmt_id, q.prepared_text);
      if (!params.ok()) return Fail("prepare", params.status());
      last_text = q.prepared_text;
    }
    auto remote = client.Execute(stmt_id, q.bindings);
    if (!remote.ok()) return Fail("execute", remote.status());

    auto local_prep = oracle.Prepare(q.prepared_text);
    if (!local_prep.ok()) return Fail("oracle prepare", local_prep.status());
    for (const auto& [name, term] : q.bindings) {
      if (dskg::Status s = local_prep->Bind(name, term); !s.ok()) {
        return Fail("oracle bind", s);
      }
    }
    auto local = local_prep->ExecuteAll();
    if (!local.ok()) return Fail("oracle execute", local.status());

    // Rows and simulated charges must be bit-identical. Render through
    // the ORACLE STORE's dictionary: OnlineStore clones the dataset into
    // a sliced dictionary, so its term ids differ from `ds.dict()`'s.
    const auto expect =
        OracleRows(local->result, oracle_store.Read().store().dict());
    if (remote->rows != expect) {
      std::fprintf(stderr,
                   "dskg_client FAIL: row mismatch on \"%s\" "
                   "(server %zu rows, oracle %zu rows)\n",
                   q.prepared_text.c_str(), remote->rows.size(),
                   expect.size());
      auto dump = [](const char* who,
                     const std::vector<std::vector<std::string>>& rows) {
        std::fprintf(stderr, "  %s:\n", who);
        for (size_t r = 0; r < rows.size() && r < 8; ++r) {
          std::fprintf(stderr, "    [");
          for (size_t c = 0; c < rows[r].size(); ++c) {
            std::fprintf(stderr, "%s%s", c ? ", " : "", rows[r][c].c_str());
          }
          std::fprintf(stderr, "]\n");
        }
      };
      dump("server", remote->rows);
      dump("oracle", expect);
      return 1;
    }
    if (remote->rel_us != local->rel_micros ||
        remote->graph_us != local->graph_micros ||
        remote->migrate_us != local->migrate_micros ||
        remote->graph_io_us != local->graph_io_micros ||
        remote->graph_cpu_us != local->graph_cpu_micros) {
      std::fprintf(stderr,
                   "dskg_client FAIL: charge mismatch on \"%s\": "
                   "wire (%.17g, %.17g, %.17g) vs oracle (%.17g, %.17g, "
                   "%.17g)\n",
                   q.prepared_text.c_str(), remote->rel_us, remote->graph_us,
                   remote->migrate_us, local->rel_micros, local->graph_micros,
                   local->migrate_micros);
      return 1;
    }
    ++checked;
    rows_total += remote->rows.size();
  }

  // Streaming path: cursor FETCH over the last statement must drain to
  // the same rows as the inline execute.
  if (!queries.empty()) {
    const dskg::workload::WorkloadQuery& q = queries.back();
    auto opened = client.OpenCursor(stmt_id, q.bindings);
    if (!opened.ok()) return Fail("open cursor", opened.status());
    std::vector<std::vector<std::string>> streamed;
    RowsResult chunk;
    chunk.done = false;
    chunk.cursor_id = opened->cursor_id;
    while (!chunk.done) {
      auto r = client.Fetch(opened->cursor_id, 7);
      if (!r.ok()) return Fail("fetch", r.status());
      chunk = std::move(r).ValueOrDie();
      streamed.insert(streamed.end(), chunk.rows.begin(), chunk.rows.end());
    }
    auto inline_r = client.Execute(stmt_id, q.bindings);
    if (!inline_r.ok()) return Fail("execute (cursor check)",
                                    inline_r.status());
    if (streamed != inline_r->rows) {
      std::fprintf(stderr, "dskg_client FAIL: cursor rows diverge\n");
      return 1;
    }
  }

  // Admin listener: health + metrics scrape.
  if (admin_port != 0) {
    auto health = Client::HttpGet(static_cast<uint16_t>(admin_port),
                                  "/healthz");
    if (!health.ok()) return Fail("/healthz", health.status());
    auto metrics = Client::HttpGet(static_cast<uint16_t>(admin_port),
                                   "/metrics");
    if (!metrics.ok()) return Fail("/metrics", metrics.status());
    if (metrics->find("server_requests_admitted") == std::string::npos) {
      std::fprintf(stderr,
                   "dskg_client FAIL: /metrics lacks server_* series\n");
      return 1;
    }
    if (!metrics_out.empty()) {
      std::FILE* f = std::fopen(metrics_out.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "dskg_client FAIL: cannot write %s\n",
                     metrics_out.c_str());
        return 1;
      }
      std::fwrite(metrics->data(), 1, metrics->size(), f);
      std::fclose(f);
    }
  }

  std::printf("dskg_client OK queries=%llu rows=%llu\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(rows_total));
  return 0;
}
