// Adaptive e-commerce analytics: demonstrates the dual store reacting to
// a *shifting* workload, the scenario the paper's adaptivity claim is
// about. A WatDiv-like shop graph first serves path-style navigation
// queries (linear), then dashboard queries (star/snowflake), then heavy
// analytics (complex). After each phase DOTIL re-tunes; the resident
// partition set follows the workload.
//
//   $ ./build/examples/adaptive_commerce

#include <cstdio>

#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "workload/generators.h"
#include "workload/templates.h"

using namespace dskg;

namespace {

void PrintResidentSet(const core::DualStore& store) {
  std::printf("  resident partitions:");
  for (rdf::TermId pred : store.graph().LoadedPredicates()) {
    std::printf(" %s", store.dict().TermOf(pred).c_str());
  }
  std::printf("  (%llu/%llu triples)\n",
              static_cast<unsigned long long>(store.graph().used_triples()),
              static_cast<unsigned long long>(
                  store.graph().capacity_triples()));
}

}  // namespace

int main() {
  workload::WatDivConfig gen;
  gen.target_triples = 90000;
  rdf::Dataset shop = workload::GenerateWatDiv(gen);
  std::printf("shop graph: %llu triples, %zu predicates\n\n",
              static_cast<unsigned long long>(shop.num_triples()),
              shop.num_predicates());

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = shop.num_triples() / 4;
  core::DualStore store(&shop, cfg);
  core::DotilTuner dotil;
  core::WorkloadRunner runner(&store, &dotil);

  struct Phase {
    const char* label;
    std::vector<workload::QueryTemplate> templates;
  };
  const Phase phases[] = {
      {"navigation (linear paths)", workload::WatDivLinearTemplates()},
      {"dashboards (stars + snowflakes)",
       [] {
         auto t = workload::WatDivStarTemplates();
         auto f = workload::WatDivSnowflakeTemplates();
         t.insert(t.end(), f.begin(), f.end());
         return t;
       }()},
      {"analytics (complex joins)", workload::WatDivComplexTemplates()},
  };

  workload::WorkloadBuilder builder(&shop);
  for (const Phase& phase : phases) {
    workload::WorkloadOptions opt;
    opt.ordered = false;  // interleaved arrivals
    auto w = builder.Build(phase.label, phase.templates, opt);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return 1;
    }
    // Run the phase twice: arrival (cold for this phase) and steady state.
    auto first = runner.Run(*w, 5);
    auto steady = runner.Run(*w, 5);
    if (!first.ok() || !steady.ok()) {
      std::fprintf(stderr, "phase failed\n");
      return 1;
    }
    std::printf("phase: %s\n", phase.label);
    std::printf("  arrival TTI %.4fs -> steady TTI %.4fs  (tuning %.4fs "
                "offline)\n",
                first->TotalTtiMicros() * 1e-6,
                steady->TotalTtiMicros() * 1e-6,
                (first->TotalTuningMicros() + steady->TotalTuningMicros()) *
                    1e-6);
    PrintResidentSet(store);
    std::printf("\n");
  }

  std::printf("The resident set tracked each phase's predicates — the "
              "adaptivity the static one-off design cannot provide.\n");
  return 0;
}
