// Adaptive e-commerce analytics: demonstrates the dual store reacting to
// a *shifting* workload, the scenario the paper's adaptivity claim is
// about. A WatDiv-like shop graph first serves path-style navigation
// queries (linear), then dashboard queries (star/snowflake), then heavy
// analytics (complex). After each phase DOTIL re-tunes; the resident
// partition set follows the workload.
//
//   $ ./build/examples/adaptive_commerce

#include <cstdio>
#include <string>

#include "common/thread_pool.h"
#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "core/session.h"
#include "workload/generators.h"
#include "workload/templates.h"

using namespace dskg;

namespace {

void PrintResidentSet(const core::DualStore& store) {
  std::printf("  resident partitions:");
  for (rdf::TermId pred : store.graph().LoadedPredicates()) {
    std::printf(" %s", std::string(store.dict().TermOf(pred)).c_str());
  }
  std::printf("  (%llu/%llu triples)\n",
              static_cast<unsigned long long>(store.graph().used_triples()),
              static_cast<unsigned long long>(
                  store.graph().capacity_triples()));
}

}  // namespace

int main() {
  workload::WatDivConfig gen;
  gen.target_triples = 90000;
  rdf::Dataset shop = workload::GenerateWatDiv(gen);
  std::printf("shop graph: %llu triples, %zu predicates\n\n",
              static_cast<unsigned long long>(shop.num_triples()),
              shop.num_predicates());

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = shop.num_triples() / 4;
  core::DualStore store(&shop, cfg);
  core::DotilTuner dotil;
  core::WorkloadRunner runner(&store, &dotil);

  struct Phase {
    const char* label;
    std::vector<workload::QueryTemplate> templates;
  };
  const Phase phases[] = {
      {"navigation (linear paths)", workload::WatDivLinearTemplates()},
      {"dashboards (stars + snowflakes)",
       [] {
         auto t = workload::WatDivStarTemplates();
         auto f = workload::WatDivSnowflakeTemplates();
         t.insert(t.end(), f.begin(), f.end());
         return t;
       }()},
      {"analytics (complex joins)", workload::WatDivComplexTemplates()},
  };

  workload::WorkloadBuilder builder(&shop);
  for (const Phase& phase : phases) {
    workload::WorkloadOptions opt;
    opt.ordered = false;  // interleaved arrivals
    auto w = builder.Build(phase.label, phase.templates, opt);
    if (!w.ok()) {
      std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
      return 1;
    }
    // Run the phase twice: arrival (cold for this phase) and steady state.
    auto first = runner.Run(*w, 5);
    auto steady = runner.Run(*w, 5);
    if (!first.ok() || !steady.ok()) {
      std::fprintf(stderr, "phase failed\n");
      return 1;
    }
    std::printf("phase: %s\n", phase.label);
    std::printf("  arrival TTI %.4fs -> steady TTI %.4fs  (tuning %.4fs "
                "offline)\n",
                first->TotalTtiMicros() * 1e-6,
                steady->TotalTtiMicros() * 1e-6,
                (first->TotalTuningMicros() + steady->TotalTuningMicros()) *
                    1e-6);
    PrintResidentSet(store);
    std::printf("\n");
  }

  std::printf("The resident set tracked each phase's predicates — the "
              "adaptivity the static one-off design cannot provide.\n");

  // A concurrent dashboard burst through the public API: one prepared
  // recommendation template, five genres in flight on the pool at once.
  ThreadPool pool(4);
  core::Session session(&store, &pool);
  auto prepared = session.Prepare(
      "SELECT ?u ?p WHERE { ?u wsdbm:likes ?p . ?p wsdbm:hasGenre $genre . }");
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  std::vector<std::future<Result<core::QueryExecution>>> inflight;
  std::vector<std::string> genres;
  for (int g = 0; g < 5; ++g) {
    const std::string genre = "wsdbm:genre_" + std::to_string(g);
    if (!prepared->Bind("genre", genre).ok()) continue;  // absent at scale
    genres.push_back(genre);
    inflight.push_back(session.SubmitAsync(*prepared));
  }
  std::printf("\ndashboard burst (%zu prepared executions on %zu workers):\n",
              inflight.size(), pool.size());
  for (size_t i = 0; i < inflight.size(); ++i) {
    auto r = inflight[i].get();
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    std::printf("  %-16s %6zu likes  (route=%s, %.2f sim-us)\n",
                genres[i].c_str(), r->result.NumRows(),
                core::RouteName(r->route), r->total_micros());
  }
  return 0;
}
