// Streaming freshness: `RunOnline` end to end against the sharded
// copy-on-write store. A YAGO-style query workload runs on a thread pool
// while the injector concurrently publishes an insert/delete stream
// across four predicate shards; every query window sees a consistent
// batch-boundary snapshot, and DOTIL re-tunes when partition statistics
// drift.
//
// The printout is the freshness trade-off: the same query workload runs
// once against a frozen store (stale, never drift-re-tuned) and once with
// live updates (fresh facts join the answers), with per-window TTI, apply
// cost and drift so the price of freshness is a number, not a claim.
//
//   $ ./build/examples/streaming_freshness

#include <cstdio>

#include "common/thread_pool.h"
#include "core/dotil.h"
#include "core/online_store.h"
#include "core/runner.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/update_stream.h"
#include "workload/workload.h"

using namespace dskg;

namespace {

/// One full online run on a fresh store; `updates` may be empty (the
/// static baseline — same protocol, zero mutations).
Result<core::OnlineRunMetrics> RunOnce(const rdf::Dataset& ds,
                                       const workload::Workload& w,
                                       const core::UpdateLog& updates,
                                       uint64_t* store_bytes) {
  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples() / 4;
  cfg.num_shards = 4;
  core::OnlineStore store(ds, cfg);
  if (store_bytes != nullptr) *store_bytes = store.StorageBytes();

  core::DotilTuner tuner;
  core::WorkloadRunner runner(/*store=*/nullptr, &tuner);
  core::OnlineRunOptions opt;
  opt.num_batches = 5;
  opt.drift_threshold = 0.10;

  ThreadPool pool(ThreadPool::DefaultThreads());
  return runner.RunOnline(&store, w, updates, opt, &pool);
}

}  // namespace

int main() {
  workload::YagoConfig gen;
  gen.target_triples = 60000;
  rdf::Dataset yago = workload::GenerateYago(gen);
  std::printf("knowledge graph: %llu triples, %zu predicates\n",
              static_cast<unsigned long long>(yago.num_triples()),
              yago.num_predicates());

  workload::WorkloadBuilder builder(&yago);
  workload::WorkloadOptions wopt;
  auto w = builder.Build("yago", workload::YagoTemplates(), wopt);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }

  // A live ingestion stream: five update batches, applied concurrently
  // with the five query windows (one batch per window).
  workload::UpdateStreamConfig uc;
  uc.num_batches = 5;
  uc.ops_per_batch = 2000;
  const core::UpdateLog updates = workload::GenerateUpdateStream(yago, uc);

  uint64_t store_bytes = 0;
  auto stale = RunOnce(yago, *w, core::UpdateLog{}, nullptr);
  auto fresh = RunOnce(yago, *w, updates, &store_bytes);
  if (!stale.ok() || !fresh.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!stale.ok() ? stale : fresh).status().ToString().c_str());
    return 1;
  }
  std::printf("sharded store: 4 predicate shards, %.2f MiB single copy "
              "(snapshots share nodes)\n\n",
              static_cast<double>(store_bytes) / (1024.0 * 1024.0));

  std::printf("%7s %12s %12s %8s %8s %8s %8s\n", "window", "TTI s",
              "update s", "ins", "del", "drift", "retuned");
  for (size_t i = 0; i < fresh->batches.size(); ++i) {
    const core::OnlineBatchMetrics& b = fresh->batches[i];
    std::printf("%7zu %12.4f %12.4f %8llu %8llu %7.0f%% %8s\n", i + 1,
                b.tti_micros * 1e-6, b.update_micros * 1e-6,
                static_cast<unsigned long long>(b.inserted),
                static_cast<unsigned long long>(b.deleted),
                100.0 * b.max_drift, b.retuned ? "yes" : "-");
  }

  const double stale_tti = stale->TotalTtiMicros() * 1e-6;
  const double fresh_tti = fresh->TotalTtiMicros() * 1e-6;
  std::printf("\nstale store  (no updates): TTI %.4f s\n", stale_tti);
  std::printf("fresh store (%llu ins, %llu del): TTI %.4f s (%+.1f%%), "
              "apply %.4f s, re-tuning %.4f s (%d retunes)\n",
              static_cast<unsigned long long>(fresh->TotalInserted()),
              static_cast<unsigned long long>(fresh->TotalDeleted()),
              fresh_tti,
              stale_tti > 0 ? 100.0 * (fresh_tti - stale_tti) / stale_tti : 0,
              fresh->TotalUpdateMicros() * 1e-6,
              fresh->TotalTuningMicros() * 1e-6, fresh->Retunes());
  std::printf("queries never block on the stream: readers pin an epoch and\n"
              "traverse an immutable snapshot while appliers build the next\n"
              "one; the TTI delta is changed knowledge and re-tuning, not\n"
              "contention.\n");

  // Freshness must have been real: the stream landed facts, and the
  // store absorbed them without poisoning any shard.
  return fresh->TotalInserted() > 0 && fresh->TotalDeleted() > 0 ? 0 : 1;
}
