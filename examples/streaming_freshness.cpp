// Streaming freshness: `RunOnline` end to end against the sharded
// copy-on-write store. A YAGO-style query workload runs on a thread pool
// while the injector concurrently publishes an insert/delete stream
// across four predicate shards; every query window sees a consistent
// batch-boundary snapshot, and DOTIL re-tunes when partition statistics
// drift.
//
// The printout is the freshness trade-off: the same query workload runs
// once against a frozen store (stale, never drift-re-tuned) and once with
// live updates (fresh facts join the answers), with per-window TTI, apply
// cost and drift so the price of freshness is a number, not a claim.
//
// The per-window table is sourced from the telemetry registry, not from
// the returned metrics struct: an `after_window` callback snapshots
// `SnapshotValues()` while the store is quiesced, and each row is the
// delta between consecutive snapshots — the same numbers any monitoring
// scrape would see.
//
//   $ ./build/examples/streaming_freshness
//   $ ./build/examples/streaming_freshness --slow-query-ms 0.05
//   $ ./build/examples/streaming_freshness --snapshot-dir /tmp/dskg_demo
//   $ ./build/examples/streaming_freshness --snapshot-dir /tmp/dskg_demo --resume
//
// `--slow-query-ms` arms the registry's slow-query log at the given
// wall-clock threshold and then replays a few queries through a `Session`
// over the final store, printing what the log captured.
//
// `--snapshot-dir DIR` runs the durability e2e instead: a durable store
// ingests a stream (snapshot mid-way, the rest WAL-only), is destroyed
// without a final snapshot — the simulated kill — and is recovered from
// DIR; the recovered rows are verified identical to a store that applied
// the same stream serially. DIR is wiped first. Adding `--resume` skips
// the ingest and only recovers whatever a previous run left in DIR.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/telemetry.h"
#include "common/thread_pool.h"
#include "core/dotil.h"
#include "core/online_store.h"
#include "core/runner.h"
#include "core/session.h"
#include "persist/wal.h"
#include "workload/generators.h"
#include "workload/templates.h"
#include "workload/update_stream.h"
#include "workload/workload.h"

using namespace dskg;

namespace {

constexpr const char* kFlagship =
    "SELECT ?p WHERE { ?p y:wasBornIn ?city . "
    "?p y:hasAcademicAdvisor ?a . ?a y:wasBornIn ?city . }";

/// One full online run on a fresh store; `updates` may be empty (the
/// static baseline — same protocol, zero mutations).
Result<core::OnlineRunMetrics> RunOnce(
    const rdf::Dataset& ds, const workload::Workload& w,
    const core::UpdateLog& updates, uint64_t* store_bytes,
    std::function<void(int)> after_window = nullptr) {
  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples() / 4;
  cfg.num_shards = 4;
  core::OnlineStore store(ds, cfg);
  if (store_bytes != nullptr) *store_bytes = store.StorageBytes();

  core::DotilTuner tuner;
  core::WorkloadRunner runner(/*store=*/nullptr, &tuner);
  core::OnlineRunOptions opt;
  opt.num_batches = 5;
  opt.drift_threshold = 0.10;
  opt.after_window = std::move(after_window);

  ThreadPool pool(ThreadPool::DefaultThreads());
  return runner.RunOnline(&store, w, updates, opt, &pool);
}

/// `m[key]`, 0 when absent (a metric nobody touched yet has no entry).
double Val(const std::map<std::string, double>& m, const std::string& key) {
  auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

/// Runs a few queries through a `Session` over a fresh store so the
/// armed slow-query log has traffic to catch, then prints its contents.
void DemoSlowQueryLog(const rdf::Dataset& ds, double threshold_ms) {
  auto& reg = telemetry::MetricsRegistry::Global();
  reg.slow_queries().set_threshold_ms(threshold_ms);

  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = ds.num_triples() / 4;
  core::OnlineStore store(ds, cfg);
  core::Session session(&store);
  for (int i = 0; i < 5; ++i) {
    auto exec = session.Execute(kFlagship);
    if (!exec.ok()) {
      std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
      return;
    }
  }

  std::printf("\nslow-query log (threshold %.3f ms, %llu caught):\n",
              threshold_ms,
              static_cast<unsigned long long>(reg.slow_queries().total()));
  for (const telemetry::SlowQueryLog::Entry& e :
       reg.slow_queries().Snapshot()) {
    std::printf("  #%llu %8.3f ms [%s] %s\n",
                static_cast<unsigned long long>(e.seq), e.wall_ms,
                e.route.c_str(), e.text.c_str());
  }
}

/// Sorted canonical rows of a store (text-decoded, id-layout-free).
std::vector<std::string> CanonRows(const core::OnlineStore& store) {
  const rdf::Dataset& ds = store.active().dataset();
  std::vector<std::string> rows;
  rows.reserve(ds.triples().size());
  for (const rdf::Triple& t : ds.triples()) {
    rows.push_back(std::string(ds.dict().TermOf(t.subject)) + "|" +
                   std::string(ds.dict().TermOf(t.predicate)) + "|" +
                   std::string(ds.dict().TermOf(t.object)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

void PrintReport(const core::OnlineStore::RecoveryReport& report) {
  std::printf("  snapshot:          %s (watermark %llu%s)\n",
              report.snapshot_file.c_str(),
              static_cast<unsigned long long>(report.snapshot_watermark),
              report.used_fallback_snapshot ? ", FALLBACK" : "");
  std::printf("  replayed from WAL: %llu batches%s\n",
              static_cast<unsigned long long>(report.replayed_batches),
              report.dropped_tail ? " (partial tail dropped)" : "");
  if (!report.wal_status.ok()) {
    std::printf("  wal status:        %s\n",
                report.wal_status.ToString().c_str());
  }
}

/// Recover-only mode (`--resume`): rebuild from whatever a previous run
/// left in `dir` and prove the store answers queries.
int ResumeDemo(const std::string& dir) {
  persist::DurabilityOptions opts;
  opts.dir = dir;
  core::DualStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.graph_capacity_triples = 32768;
  core::OnlineStore::RecoveryReport report;
  auto store = core::OnlineStore::Recover(cfg, opts, &report);
  if (!store.ok()) {
    std::fprintf(stderr,
                 "cannot resume from %s: %s\n(run once with --snapshot-dir "
                 "%s first)\n",
                 dir.c_str(), store.status().ToString().c_str(), dir.c_str());
    return 1;
  }
  std::printf("resumed from %s:\n", dir.c_str());
  PrintReport(report);
  std::printf("  rows:              %llu\n",
              static_cast<unsigned long long>(
                  (*store)->active().dataset().num_triples()));
  auto exec = (*store)->Process(kFlagship);
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }
  std::printf("  flagship query:    %llu rows — the recovered store serves\n",
              static_cast<unsigned long long>(exec->result.NumRows()));
  return 0;
}

/// Durability e2e (`--snapshot-dir`): ingest with a mid-stream snapshot,
/// "kill" the process (destroy the store with batches only in the WAL),
/// recover, and verify zero diff against a serial re-run.
int DurabilityDemo(const std::string& dir) {
  std::filesystem::remove_all(dir);

  workload::YagoConfig gen;
  gen.target_triples = 20000;
  rdf::Dataset yago = workload::GenerateYago(gen);

  workload::UpdateStreamConfig uc;
  uc.num_batches = 6;
  uc.ops_per_batch = 1000;
  const core::UpdateLog updates = workload::GenerateUpdateStream(yago, uc);

  core::DualStoreConfig cfg;
  cfg.num_shards = 2;
  cfg.graph_capacity_triples = yago.num_triples() / 4;

  persist::DurabilityOptions opts;
  opts.dir = dir;
  opts.sync_policy = persist::SyncPolicy::kEveryBatch;

  std::printf("durability e2e in %s:\n", dir.c_str());
  std::vector<std::string> live_rows;
  {
    core::OnlineStore store(yago, cfg, opts);
    if (!store.poison_status().ok()) {
      std::fprintf(stderr, "%s\n", store.poison_status().ToString().c_str());
      return 1;
    }
    for (uint64_t k = 0; k < updates.size(); ++k) {
      if (k == 3) {
        Status s = store.SaveSnapshot();
        if (!s.ok()) {
          std::fprintf(stderr, "%s\n", s.ToString().c_str());
          return 1;
        }
        std::printf("  checkpoint at batch %llu (snapshot + WAL rotation)\n",
                    static_cast<unsigned long long>(k));
      }
      auto r = store.ApplyUpdates(updates.at(k));
      if (!r.ok()) {
        std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
        return 1;
      }
    }
    live_rows = CanonRows(store);
    std::printf("  ingested %llu batches; batches 3..5 live only in the WAL\n",
                static_cast<unsigned long long>(updates.size()));
    std::printf("  -- simulated kill (no final snapshot) --\n");
  }

  core::OnlineStore::RecoveryReport report;
  auto recovered = core::OnlineStore::Recover(cfg, opts, &report);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  PrintReport(report);

  // Zero-diff verification, twice over: against the killed store's final
  // rows, and against an independent serial re-run of the same stream.
  if (CanonRows(**recovered) != live_rows) {
    std::fprintf(stderr, "FAIL: recovered rows differ from the live store\n");
    return 1;
  }
  core::OnlineStore oracle(yago, cfg);
  for (uint64_t k = 0; k < updates.size(); ++k) {
    auto r = oracle.ApplyUpdates(updates.at(k));
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  if (CanonRows(**recovered) != CanonRows(oracle)) {
    std::fprintf(stderr, "FAIL: recovered rows differ from a serial re-run\n");
    return 1;
  }
  std::printf("  verified: recovered rows == killed store == serial re-run "
              "(%llu rows)\n",
              static_cast<unsigned long long>(live_rows.size()));
  std::printf("  re-run with --resume to recover again from this directory\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  double slow_query_ms = 0.0;
  std::string snapshot_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--slow-query-ms") == 0 && i + 1 < argc) {
      slow_query_ms = std::atof(argv[i + 1]);
    } else if (std::strncmp(argv[i], "--slow-query-ms=", 16) == 0) {
      slow_query_ms = std::atof(argv[i] + 16);
    } else if (std::strcmp(argv[i], "--snapshot-dir") == 0 && i + 1 < argc) {
      snapshot_dir = argv[i + 1];
      ++i;
    } else if (std::strncmp(argv[i], "--snapshot-dir=", 15) == 0) {
      snapshot_dir = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    }
  }
  if (resume && snapshot_dir.empty()) {
    std::fprintf(stderr, "--resume requires --snapshot-dir DIR\n");
    return 1;
  }
  if (!snapshot_dir.empty()) {
    return resume ? ResumeDemo(snapshot_dir) : DurabilityDemo(snapshot_dir);
  }

  // The whole point of this example is the observability surface; make
  // sure it is on even if the environment disabled it.
  auto& reg = telemetry::MetricsRegistry::Global();
  reg.set_enabled(true);

  workload::YagoConfig gen;
  gen.target_triples = 60000;
  rdf::Dataset yago = workload::GenerateYago(gen);
  std::printf("knowledge graph: %llu triples, %zu predicates\n",
              static_cast<unsigned long long>(yago.num_triples()),
              yago.num_predicates());

  workload::WorkloadBuilder builder(&yago);
  workload::WorkloadOptions wopt;
  auto w = builder.Build("yago", workload::YagoTemplates(), wopt);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }

  // A live ingestion stream: five update batches, applied concurrently
  // with the five query windows (one batch per window).
  workload::UpdateStreamConfig uc;
  uc.num_batches = 5;
  uc.ops_per_batch = 2000;
  const core::UpdateLog updates = workload::GenerateUpdateStream(yago, uc);

  uint64_t store_bytes = 0;
  auto stale = RunOnce(yago, *w, core::UpdateLog{}, nullptr);

  // Registry snapshots bracketing each window of the fresh run: snaps[0]
  // is the pre-run state, snaps[i + 1] lands right after window i while
  // the store is quiesced. Row i of the table is snaps[i+1] - snaps[i].
  std::vector<std::map<std::string, double>> snaps;
  snaps.push_back(reg.SnapshotValues());
  auto fresh = RunOnce(yago, *w, updates, &store_bytes,
                       [&snaps, &reg](int) {
                         snaps.push_back(reg.SnapshotValues());
                       });
  if (!stale.ok() || !fresh.ok()) {
    std::fprintf(stderr, "%s\n",
                 (!stale.ok() ? stale : fresh).status().ToString().c_str());
    return 1;
  }
  std::printf("sharded store: 4 predicate shards, %.2f MiB single copy "
              "(snapshots share nodes)\n\n",
              static_cast<double>(store_bytes) / (1024.0 * 1024.0));

  std::printf("per-window table (from telemetry registry deltas):\n");
  std::printf("%7s %12s %12s %8s %8s %8s %8s\n", "window", "TTI s",
              "update s", "ins", "del", "drift", "retuned");
  for (size_t i = 0; i + 1 < snaps.size(); ++i) {
    const std::map<std::string, double>& a = snaps[i];
    const std::map<std::string, double>& b = snaps[i + 1];
    const double tti_us =
        Val(b, "online.window.tti_sim_us.sum") -
        Val(a, "online.window.tti_sim_us.sum");
    const double upd_us =
        Val(b, "online.window.update_sim_us.sum") -
        Val(a, "online.window.update_sim_us.sum");
    const double ins = Val(b, "store.triples_inserted") -
                       Val(a, "store.triples_inserted");
    const double del = Val(b, "store.triples_deleted") -
                       Val(a, "store.triples_deleted");
    const double retunes =
        Val(b, "online.retunes") - Val(a, "online.retunes");
    const double drift = Val(b, "online.max_drift");  // gauge: last window
    std::printf("%7zu %12.4f %12.4f %8.0f %8.0f %7.0f%% %8s\n", i + 1,
                tti_us * 1e-6, upd_us * 1e-6, ins, del, 100.0 * drift,
                retunes > 0 ? "yes" : "-");
  }

  const double stale_tti = stale->TotalTtiMicros() * 1e-6;
  const double fresh_tti = fresh->TotalTtiMicros() * 1e-6;
  std::printf("\nstale store  (no updates): TTI %.4f s\n", stale_tti);
  std::printf("fresh store (%llu ins, %llu del): TTI %.4f s (%+.1f%%), "
              "apply %.4f s, re-tuning %.4f s (%d retunes)\n",
              static_cast<unsigned long long>(fresh->TotalInserted()),
              static_cast<unsigned long long>(fresh->TotalDeleted()),
              fresh_tti,
              stale_tti > 0 ? 100.0 * (fresh_tti - stale_tti) / stale_tti : 0,
              fresh->TotalUpdateMicros() * 1e-6,
              fresh->TotalTuningMicros() * 1e-6, fresh->Retunes());
  std::printf("queries never block on the stream: readers pin an epoch and\n"
              "traverse an immutable snapshot while appliers build the next\n"
              "one; the TTI delta is changed knowledge and re-tuning, not\n"
              "contention.\n");

  if (slow_query_ms > 0) DemoSlowQueryLog(yago, slow_query_ms);

  // Freshness must have been real: the stream landed facts, and the
  // store absorbed them without poisoning any shard. The registry must
  // agree with the returned metrics — it watched the same run.
  const auto& last = snaps.back();
  const double reg_ins = Val(last, "store.triples_inserted") -
                         Val(snaps.front(), "store.triples_inserted");
  const bool ok = fresh->TotalInserted() > 0 && fresh->TotalDeleted() > 0 &&
                  reg_ins == static_cast<double>(fresh->TotalInserted());
  return ok ? 0 : 1;
}
