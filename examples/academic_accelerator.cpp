// Academic knowledge-graph accelerator: the paper's motivating scenario
// at realistic scale. A YAGO-like graph is served from the relational
// store while DOTIL learns, batch by batch, which predicate partitions to
// stage in the graph store. Prints per-batch TTI against an untuned
// RDB-only baseline and the final physical design.
//
//   $ ./build/examples/academic_accelerator

#include <cstdio>
#include <string>

#include "core/dotil.h"
#include "core/dual_store.h"
#include "core/runner.h"
#include "core/session.h"
#include "workload/generators.h"
#include "workload/templates.h"

using namespace dskg;

int main() {
  // A YAGO-like graph: ~100k facts over 39 predicates (persons, cities,
  // advisors, marriages, movies, prizes, ...).
  workload::YagoConfig gen;
  gen.target_triples = 100000;
  rdf::Dataset kg = workload::GenerateYago(gen);
  std::printf("knowledge graph: %llu triples, %zu predicates, %zu terms\n\n",
              static_cast<unsigned long long>(kg.num_triples()),
              kg.num_predicates(), kg.dict().size());

  // The paper's YAGO workload: 4 templates x (1 original + 4 mutations),
  // consumed in 5 batches.
  workload::WorkloadBuilder builder(&kg);
  workload::WorkloadOptions opt;
  opt.ordered = true;
  auto workload = builder.Build("yago", workload::YagoTemplates(), opt);
  if (!workload.ok()) {
    std::fprintf(stderr, "%s\n", workload.status().ToString().c_str());
    return 1;
  }

  // Baseline: everything relational.
  rdf::Dataset kg_baseline = workload::GenerateYago(gen);
  core::DualStoreConfig rel_cfg;
  rel_cfg.use_graph = false;
  core::DualStore rdb_only(&kg_baseline, rel_cfg);
  core::WorkloadRunner baseline_runner(&rdb_only, nullptr);
  auto baseline = baseline_runner.Run(*workload, 5);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }

  // Dual store: graph-store budget = 25% of the graph (the paper's tuned
  // r_BG), DOTIL with the paper's tuned hyper-parameters.
  core::DualStoreConfig cfg;
  cfg.graph_capacity_triples = kg.num_triples() / 4;
  core::DualStore store(&kg, cfg);
  core::DotilTuner dotil;  // alpha=.5 gamma=.7 lambda=4.5 prob=.9
  core::WorkloadRunner runner(&store, &dotil);

  // Two passes: the first is cold; the second shows the learned design.
  std::printf("%-6s | %12s | %12s | %s\n", "batch", "RDB-only (s)",
              "RDB-GDB (s)", "graph share");
  for (int pass = 1; pass <= 2; ++pass) {
    auto m = runner.Run(*workload, 5);
    if (!m.ok()) {
      std::fprintf(stderr, "%s\n", m.status().ToString().c_str());
      return 1;
    }
    std::printf("--- pass %d %s\n", pass,
                pass == 1 ? "(cold start)" : "(warmed, DOTIL-tuned)");
    for (size_t b = 0; b < m->batches.size(); ++b) {
      std::printf("%6zu | %12.4f | %12.4f | %10.1f%%\n", b + 1,
                  baseline->batches[b].tti_micros * 1e-6,
                  m->batches[b].tti_micros * 1e-6,
                  100.0 * m->batches[b].GraphCostProportion());
    }
  }

  std::printf("\nfinal physical design (graph store %llu/%llu triples):\n",
              static_cast<unsigned long long>(store.graph().used_triples()),
              static_cast<unsigned long long>(
                  store.graph().capacity_triples()));
  for (rdf::TermId pred : store.graph().LoadedPredicates()) {
    std::printf("  %-28s %8llu triples   Q=[%.3f, %.3f]\n",
                std::string(kg.dict().TermOf(pred)).c_str(),
                static_cast<unsigned long long>(store.PartitionSize(pred)),
                dotil.MatrixOf(pred).at(0, 1), dotil.MatrixOf(pred).at(1, 0));
  }

  // Serve an ad-hoc analyst question from the tuned store through the
  // public Session API: prepared once, parameterized by prize, streamed.
  core::Session session(&store);
  auto prepared = session.Prepare(
      "SELECT ?p ?c WHERE { ?p y:wonPrize $prize . "
      "?p y:graduatedFrom ?u . ?u y:locatedInCity ?c . }");
  if (!prepared.ok()) {
    std::fprintf(stderr, "%s\n", prepared.status().ToString().c_str());
    return 1;
  }
  if (auto s = prepared->Bind("prize", "y:prize_0"); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  auto cursor = prepared->OpenCursor();
  if (!cursor.ok()) {
    std::fprintf(stderr, "%s\n", cursor.status().ToString().c_str());
    return 1;
  }
  sparql::BindingTable chunk;
  bool done = false;
  size_t streamed = 0;
  while (!done && streamed < 5) {  // first few hits only: the cursor
    if (!cursor->Next(&chunk, 1, &done).ok()) break;  // stops the search
    for (const auto row : chunk.Rows()) {
      std::printf("  prize winner %s (university city %s)\n",
                  std::string(kg.dict().TermOf(row[0])).c_str(),
                  std::string(kg.dict().TermOf(row[1])).c_str());
      ++streamed;
    }
  }
  std::printf("\nstreamed the first %zu answer(s) of the tuned store "
              "(route=%s) without materializing the rest.\n",
              streamed, core::RouteName(cursor->route()));
  return 0;
}
