// dskg_server: the network serving tier, end to end. Generates a
// deterministic YAGO-shaped knowledge graph, stands an OnlineStore over
// it, and serves the DSKG wire protocol plus an admin HTTP listener
// (/metrics, /healthz, /debug/slow). SIGINT/SIGTERM drain in-flight
// requests and — with --snapshot-dir — take a final checkpoint.
//
//   $ ./build/examples/dskg_server --port 7687 --admin-port 7688
//   dskg_server READY port=7687 admin_port=7688 triples=120000
//
// A peer that generates the same dataset (same --triples and --seed,
// e.g. examples/dskg_client) gets bit-identical rows and simulated
// charges to a direct in-process core::Session run.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

#include "common/telemetry.h"
#include "core/online_store.h"
#include "persist/wal.h"
#include "server/server.h"
#include "workload/generators.h"

using dskg::core::DualStoreConfig;
using dskg::core::OnlineStore;
using dskg::server::Server;
using dskg::server::ServerConfig;

namespace {

const char* FlagValue(const char* arg, const char* name, int argc,
                      char** argv, int* i) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0) return nullptr;
  if (arg[n] == '=') return arg + n + 1;
  if (arg[n] == '\0' && *i + 1 < argc) return argv[++*i];
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0, admin_port = 0, workers = 4, shards = 4;
  uint64_t triples = 120000, seed = 1;
  size_t queue_depth = 256, batch_max = 16;
  double slow_query_ms = 0;
  std::string snapshot_dir, port_file;

  for (int i = 1; i < argc; ++i) {
    const char* v;
    if ((v = FlagValue(argv[i], "--port", argc, argv, &i))) {
      port = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--admin-port", argc, argv, &i))) {
      admin_port = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--workers", argc, argv, &i))) {
      workers = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--shards", argc, argv, &i))) {
      shards = std::atoi(v);
    } else if ((v = FlagValue(argv[i], "--triples", argc, argv, &i))) {
      triples = std::strtoull(v, nullptr, 10);
    } else if ((v = FlagValue(argv[i], "--seed", argc, argv, &i))) {
      seed = std::strtoull(v, nullptr, 10);
    } else if ((v = FlagValue(argv[i], "--queue-depth", argc, argv, &i))) {
      queue_depth = std::strtoull(v, nullptr, 10);
    } else if ((v = FlagValue(argv[i], "--batch-max", argc, argv, &i))) {
      batch_max = std::strtoull(v, nullptr, 10);
    } else if ((v = FlagValue(argv[i], "--slow-query-ms", argc, argv, &i))) {
      slow_query_ms = std::atof(v);
    } else if ((v = FlagValue(argv[i], "--snapshot-dir", argc, argv, &i))) {
      snapshot_dir = v;
    } else if ((v = FlagValue(argv[i], "--port-file", argc, argv, &i))) {
      port_file = v;
    } else {
      std::fprintf(stderr,
                   "usage: dskg_server [--port N] [--admin-port N]\n"
                   "  [--workers N] [--shards N] [--triples N] [--seed N]\n"
                   "  [--queue-depth N] [--batch-max N] [--slow-query-ms F]\n"
                   "  [--snapshot-dir DIR] [--port-file PATH]\n");
      return 2;
    }
  }

  std::fprintf(stderr, "dskg_server: generating %llu-triple dataset...\n",
               static_cast<unsigned long long>(triples));
  dskg::workload::YagoConfig ycfg;
  ycfg.seed = seed;
  ycfg.target_triples = triples;
  dskg::rdf::Dataset ds = dskg::workload::GenerateYago(ycfg);

  DualStoreConfig store_cfg;
  store_cfg.num_shards = shards;
  store_cfg.graph_capacity_triples = ds.num_triples() / 4;

  std::unique_ptr<OnlineStore> store;
  if (!snapshot_dir.empty()) {
    dskg::persist::DurabilityOptions dur;
    dur.dir = snapshot_dir;
    store = std::make_unique<OnlineStore>(ds, store_cfg, dur);
    if (!store->poison_status().ok()) {
      std::fprintf(stderr, "dskg_server: durability setup failed: %s\n",
                   store->poison_status().ToString().c_str());
      return 1;
    }
  } else {
    store = std::make_unique<OnlineStore>(ds, store_cfg);
  }

  ServerConfig cfg;
  cfg.port = static_cast<uint16_t>(port);
  cfg.admin_port = static_cast<uint16_t>(admin_port);
  cfg.workers = workers;
  cfg.max_queue_depth = queue_depth;
  cfg.max_batch = batch_max;
  cfg.slow_query_ms = slow_query_ms;
  cfg.checkpoint_on_shutdown = !snapshot_dir.empty();

  Server server(store.get(), cfg);
  const dskg::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "dskg_server: start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  dskg::server::InstallSignalShutdown(&server);

  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f, "%u %u\n", server.port(), server.admin_port());
      std::fclose(f);
    }
  }
  // The READY line is the startup contract scripts wait on.
  std::printf("dskg_server READY port=%u admin_port=%u triples=%llu\n",
              server.port(), server.admin_port(),
              static_cast<unsigned long long>(ds.num_triples()));
  std::fflush(stdout);

  while (!server.stopped()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  dskg::server::InstallSignalShutdown(nullptr);

  const Server::Stats s = server.stats();
  std::printf(
      "dskg_server STOPPED connections=%llu admitted=%llu rejected=%llu "
      "responses=%llu errors=%llu batches=%llu\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.requests_admitted),
      static_cast<unsigned long long>(s.requests_rejected),
      static_cast<unsigned long long>(s.responses_sent),
      static_cast<unsigned long long>(s.errors_sent),
      static_cast<unsigned long long>(s.batches));
  return 0;
}
