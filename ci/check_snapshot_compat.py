#!/usr/bin/env python3
"""Verifies the committed golden snapshot fixture still loads.

Usage: check_snapshot_compat.py BENCH_PERSISTENCE_BINARY FIXTURE_DIR

Runs `bench_persistence --check-compat FIXTURE_DIR`, which recovers an
OnlineStore from the committed snapshot + WAL pair in FIXTURE_DIR and
compares the recovered row set (count and CRC32C) and replay depth
against FIXTURE_DIR/expected.json. The binary prints one line of the
form

    COMPAT {"ok": 1, "rows": 38, ...}

and exits nonzero on any mismatch. This script is a thin wrapper that
surfaces that line in CI logs and turns a missing/garbled report into a
failure too — a format change that breaks old snapshots must ship a
regenerated fixture (`bench_persistence --write-fixture`) and a
format-version bump in the same PR.
"""

import json
import subprocess
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    binary, fixture_dir = sys.argv[1], sys.argv[2]

    proc = subprocess.run(
        [binary, "--check-compat", fixture_dir],
        capture_output=True,
        text=True,
    )
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)

    report = None
    for line in proc.stdout.splitlines():
        if line.startswith("COMPAT "):
            try:
                report = json.loads(line[len("COMPAT "):])
            except json.JSONDecodeError:
                print(f"FAIL: unparseable compat report: {line}")
                return 1

    if report is None:
        print("FAIL: no COMPAT report line in output")
        return 1
    if proc.returncode != 0 or not report.get("ok"):
        print(
            f"FAIL: golden snapshot in {fixture_dir} no longer recovers "
            "cleanly; if the on-disk format changed intentionally, bump the "
            "snapshot version and regenerate the fixture with "
            "--write-fixture in this PR"
        )
        return 1
    print(f"OK: golden snapshot in {fixture_dir} recovers bit-identically")
    return 0


if __name__ == "__main__":
    sys.exit(main())
