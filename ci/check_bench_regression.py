#!/usr/bin/env python3
"""Compares a bench --json record against a committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [THRESHOLD]

Fails (exit 1) when any deterministic numeric metric of the current run
moves more than THRESHOLD x away from its baseline value in either
direction (default 3.0 — a slowdown is a regression, a collapse such as
result_rows dropping to 0 is a lost-correctness bug), or when the
current run dropped a table/row the baseline has. Wall-clock and memory columns
(wall/rss/iters/passes and *_ms) are machine-dependent and ignored — the
simulated cost model is deterministic by design, so everything else
should only move when an engine change genuinely moves it. The generous
3x threshold keeps the job honest without flakiness: a legitimate
cost-model change that trips it should update bench/baselines/ in the
same PR.
"""

import json
import sys


def is_ignored(key: str) -> bool:
    k = key.lower()
    return (
        "wall" in k
        or "rss" in k
        or k in ("iters", "passes")
        or k.endswith("_ms")
        or k.endswith("_us")
    )


def main() -> int:
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 3.0

    if baseline.get("scale") != current.get("scale"):
        print(
            f"FAIL: scale mismatch (baseline {baseline.get('scale')} vs "
            f"current {current.get('scale')}); run both at the same "
            "DSKG_BENCH_SCALE"
        )
        return 1

    failures = []
    for table, base_rows in baseline.get("tables", {}).items():
        cur_rows = current.get("tables", {}).get(table)
        if cur_rows is None:
            failures.append(f"table '{table}' missing from current run")
            continue
        if len(cur_rows) < len(base_rows):
            failures.append(
                f"table '{table}' shrank: {len(base_rows)} -> {len(cur_rows)} rows"
            )
        for i, (b, c) in enumerate(zip(base_rows, cur_rows)):
            for key, bv in b.items():
                if is_ignored(key) or not isinstance(bv, (int, float)):
                    continue
                cv = c.get(key)
                if not isinstance(cv, (int, float)):
                    failures.append(f"{table}[{i}].{key}: missing in current")
                    continue
                if bv > 0 and cv > threshold * bv:
                    failures.append(
                        f"{table}[{i}].{key}: {cv:g} > {threshold:g}x "
                        f"baseline {bv:g}"
                    )
                elif bv > 0 and cv * threshold < bv:
                    failures.append(
                        f"{table}[{i}].{key}: {cv:g} < baseline {bv:g} / "
                        f"{threshold:g} (metric collapsed)"
                    )
                elif bv == 0 and cv != 0:
                    failures.append(
                        f"{table}[{i}].{key}: baseline 0 but current {cv:g}"
                    )

    if failures:
        print(f"FAIL: {len(failures)} regression(s) vs {sys.argv[1]}:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print(f"OK: {sys.argv[2]} within {threshold:g}x of {sys.argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
