#!/usr/bin/env python3
"""Compares a bench --json record against a committed baseline.

Usage: check_bench_regression.py BASELINE.json CURRENT.json [THRESHOLD]
           [--tight KEYSUBSTR=FACTOR ...]

Fails (exit 1) when any deterministic numeric metric of the current run
moves more than THRESHOLD x away from its baseline value in either
direction (default 3.0 — a slowdown is a regression, a collapse such as
result_rows dropping to 0 is a lost-correctness bug), or when the
current run dropped a table/row the baseline has. Wall-clock and memory columns
(wall/rss/iters/passes and *_ms) are machine-dependent and ignored — the
simulated cost model is deterministic by design, so everything else
should only move when an engine change genuinely moves it. The generous
3x threshold keeps the job honest without flakiness: a legitimate
cost-model change that trips it should update bench/baselines/ in the
same PR.

`--tight KEYSUBSTR=FACTOR` overrides the threshold for metrics whose key
contains KEYSUBSTR — used for metrics that are exactly reproducible by
construction, e.g. the storage tier's bytes/triple, where a 3x allowance
would let a memory-layout regression slip through:

    check_bench_regression.py base.json cur.json --tight bytes_per_triple=1.25

`--rss-max KEYSUBSTR=FACTOR` asserts an upper bound only: metrics whose
key contains KEYSUBSTR must satisfy current <= FACTOR x baseline, with no
collapse check (shrinking is the point) and even when the key would
normally be ignored as a memory column. Used to pin a claimed memory
reduction to a frozen predecessor baseline:

    check_bench_regression.py old_design.json cur.json --rss-max store_bytes=0.65
"""

import json
import sys


def is_ignored(key: str) -> bool:
    k = key.lower()
    return (
        "wall" in k
        or "rss" in k
        or k in ("iters", "passes", "threads", "hardware_concurrency")
        or k.endswith("_ms")
        or k.endswith("_us")
    )


def main() -> int:
    positional = []
    tight = []  # (key substring, factor)
    rss_max = []  # (key substring, factor): upper bound only
    args = iter(sys.argv[1:])
    for arg in args:
        if arg == "--tight":
            spec = next(args, None)
            if spec is None or "=" not in spec:
                print("--tight needs KEYSUBSTR=FACTOR")
                return 2
            sub, factor = spec.split("=", 1)
            tight.append((sub, float(factor)))
        elif arg.startswith("--tight="):
            sub, factor = arg[len("--tight="):].split("=", 1)
            tight.append((sub, float(factor)))
        elif arg == "--rss-max":
            spec = next(args, None)
            if spec is None or "=" not in spec:
                print("--rss-max needs KEYSUBSTR=FACTOR")
                return 2
            sub, factor = spec.split("=", 1)
            rss_max.append((sub, float(factor)))
        elif arg.startswith("--rss-max="):
            sub, factor = arg[len("--rss-max="):].split("=", 1)
            rss_max.append((sub, float(factor)))
        else:
            positional.append(arg)

    if len(positional) < 2:
        print(__doc__)
        return 2
    with open(positional[0]) as f:
        baseline = json.load(f)
    with open(positional[1]) as f:
        current = json.load(f)
    default_threshold = float(positional[2]) if len(positional) > 2 else 3.0

    def threshold_for(key: str) -> float:
        for sub, factor in tight:
            if sub in key:
                return factor
        return default_threshold

    if baseline.get("scale") != current.get("scale"):
        print(
            f"FAIL: scale mismatch (baseline {baseline.get('scale')} vs "
            f"current {current.get('scale')}); run both at the same "
            "DSKG_BENCH_SCALE"
        )
        return 1

    failures = []
    for table, base_rows in baseline.get("tables", {}).items():
        cur_rows = current.get("tables", {}).get(table)
        if cur_rows is None:
            failures.append(f"table '{table}' missing from current run")
            continue
        if len(cur_rows) < len(base_rows):
            failures.append(
                f"table '{table}' shrank: {len(base_rows)} -> {len(cur_rows)} rows"
            )
        for i, (b, c) in enumerate(zip(base_rows, cur_rows)):
            for key, bv in b.items():
                if not isinstance(bv, (int, float)):
                    continue
                rss_factor = next(
                    (factor for sub, factor in rss_max if sub in key), None
                )
                if rss_factor is not None:
                    cv = c.get(key)
                    if not isinstance(cv, (int, float)):
                        failures.append(f"{table}[{i}].{key}: missing in current")
                    elif cv > rss_factor * bv:
                        failures.append(
                            f"{table}[{i}].{key}: {cv:g} > {rss_factor:g}x "
                            f"predecessor baseline {bv:g}"
                        )
                    continue
                if is_ignored(key):
                    continue
                cv = c.get(key)
                if not isinstance(cv, (int, float)):
                    failures.append(f"{table}[{i}].{key}: missing in current")
                    continue
                threshold = threshold_for(key)
                if bv > 0 and cv > threshold * bv:
                    failures.append(
                        f"{table}[{i}].{key}: {cv:g} > {threshold:g}x "
                        f"baseline {bv:g}"
                    )
                elif bv > 0 and cv * threshold < bv:
                    failures.append(
                        f"{table}[{i}].{key}: {cv:g} < baseline {bv:g} / "
                        f"{threshold:g} (metric collapsed)"
                    )
                elif bv == 0 and cv != 0:
                    failures.append(
                        f"{table}[{i}].{key}: baseline 0 but current {cv:g}"
                    )

    if failures:
        print(f"FAIL: {len(failures)} regression(s) vs {positional[0]}:")
        for f_ in failures:
            print(f"  - {f_}")
        return 1
    print(f"OK: {positional[1]} within thresholds of {positional[0]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
