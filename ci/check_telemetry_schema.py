#!/usr/bin/env python3
"""Validates the `telemetry` block a bench --json record ships.

Usage: check_telemetry_schema.py RECORD.json [--base session|server|none]
           [--require NAME ...]
       check_telemetry_schema.py --prometheus DUMP.txt [--require NAME ...]

--base picks which front end's baseline metric set is demanded:
"session" (default, the core::Session surface) or "server" (the network
serving tier, which executes plans without a Session). --prometheus mode
checks only --require names plus histogram consistency.

Every bench record carries the global registry's DumpJson() under a
top-level "telemetry" key (bench_util.h appends it at flush time). This
checker pins that contract so the observability surface cannot silently
rot:

  * the block exists and has the five sections (counters, gauges,
    histograms, slow_queries, spans);
  * a baseline set of metric names every query-serving run must emit is
    present (plan-cache counters, per-route counters/histograms);
  * additional required names can be demanded per bench with --require
    (e.g. the online bench must ship per-shard applier histograms). A
    trailing ".*" makes the requirement a prefix wildcard: --require
    'server.*' demands at least one metric under the server. namespace;
  * every histogram is internally consistent: non-negative count/sum,
    min <= p50 <= p95 <= p99 <= max, cumulative buckets monotone
    non-decreasing with strictly increasing finite `le` edges, and the
    terminal "+Inf" bucket equal to the total count.

With --prometheus the input is a /metrics scrape (text exposition
format) instead of a bench record: series names are collected from the
`# TYPE` lines, required names are matched after the registry's '.'→'_'
Prometheus translation, and histogram `_bucket` series are checked for
cumulative monotonicity.

Exit 1 on any violation; the offending record and reason are printed.
"""

import json
import sys

# Metrics any run that served at least one query must have registered,
# keyed by which front end drove the queries (--base). The session base
# is the default; the network server executes plans directly (no
# core::Session), so serving runs check the server surface instead.
ROUTE_COUNTERS = [
    "query.route.relational",
    "query.route.graph",
    "query.route.dual",
    "query.route.view",
]
BASES = {
    "session": (
        ROUTE_COUNTERS + [
            "session.prepares",
            "session.cache_hits",
            "session.executions",
        ],
        ["session.prepare_us", "session.execute_us"],
    ),
    "server": (
        ROUTE_COUNTERS + [
            "server.connections.accepted",
            "server.requests.admitted",
            "server.requests.rejected",
            "server.responses",
            "server.batches",
            "plan_cache.shared.hits",
            "plan_cache.shared.misses",
        ],
        ["server.request_us", "server.batch_size"],
    ),
    "none": ([], []),
}


def fail(msg: str) -> int:
    print(f"telemetry schema: FAIL: {msg}")
    return 1


def check_histogram(name: str, h) -> list:
    errs = []
    for key in ("count", "sum", "min", "max", "p50", "p95", "p99",
                "buckets"):
        if key not in h:
            errs.append(f"histogram {name}: missing field '{key}'")
    if errs:
        return errs
    if h["count"] < 0 or h["sum"] < 0:
        errs.append(f"histogram {name}: negative count/sum")
    if h["count"] > 0:
        order = [h["min"], h["p50"], h["p95"], h["p99"], h["max"]]
        if any(a > b for a, b in zip(order, order[1:])):
            errs.append(
                f"histogram {name}: quantiles out of order: {order}")
    buckets = h["buckets"]
    if not buckets or buckets[-1].get("le") != "+Inf":
        errs.append(f"histogram {name}: missing terminal +Inf bucket")
        return errs
    prev_le = None
    prev_count = 0
    for b in buckets:
        le, cum = b.get("le"), b.get("count")
        if cum is None or cum < prev_count:
            errs.append(
                f"histogram {name}: cumulative counts not monotone at "
                f"le={le}")
            break
        prev_count = cum
        if le == "+Inf":
            continue
        if prev_le is not None and not le > prev_le:
            errs.append(
                f"histogram {name}: bucket edges not increasing at "
                f"le={le}")
            break
        prev_le = le
    if buckets[-1]["count"] != h["count"]:
        errs.append(
            f"histogram {name}: +Inf bucket {buckets[-1]['count']} != "
            f"count {h['count']}")
    return errs


def require_satisfied(req: str, known: set) -> bool:
    """Exact name, or prefix wildcard when `req` ends in '.*'."""
    if req.endswith(".*"):
        prefix = req[:-1]  # keep the trailing '.' of the namespace
        return any(name.startswith(prefix) for name in known)
    return req in known


def prom_name(name: str) -> str:
    """The registry's DumpText translation: '.' becomes '_'."""
    return name.replace(".", "_").replace("-", "_")


def check_prometheus(path: str, required: list) -> int:
    """Schema-checks a /metrics scrape (Prometheus text format)."""
    series = {}  # base series name -> declared type
    samples = {}  # full sample name -> list of (labels, value)
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4:
                    return fail(f"{path}: malformed TYPE line: {line}")
                series[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue
            # `name{labels} value` or `name value`
            head, _, value = line.rpartition(" ")
            name, _, labels = head.partition("{")
            try:
                samples.setdefault(name, []).append(
                    (labels.rstrip("}"), float(value)))
            except ValueError:
                return fail(f"{path}: unparseable sample: {line}")

    if not series:
        return fail(f"{path}: no '# TYPE' lines — not a metrics dump?")

    errors = []
    for req in required:
        # Requirements are written in registry (dotted) form; a scrape
        # carries the Prometheus translation ('.' -> '_').
        if req.endswith(".*"):
            prefix = prom_name(req[:-2]) + "_"
            ok = any(n.startswith(prefix) for n in series)
        else:
            ok = prom_name(req) in series
        if not ok:
            errors.append(f"required series '{req}' absent")

    # Histograms: cumulative buckets must be monotone and end at +Inf ==
    # _count.
    for name, kind in sorted(series.items()):
        if kind != "histogram":
            continue
        buckets = samples.get(name + "_bucket", [])
        if not buckets:
            errors.append(f"histogram {name}: no _bucket samples")
            continue
        prev = 0.0
        saw_inf = False
        for labels, value in buckets:
            if value < prev:
                errors.append(
                    f"histogram {name}: cumulative bucket decreases at "
                    f"{labels}")
                break
            prev = value
            saw_inf = saw_inf or 'le="+Inf"' in labels
        if not saw_inf:
            errors.append(f"histogram {name}: missing +Inf bucket")
        count = samples.get(name + "_count")
        if count and buckets and count[0][1] != buckets[-1][1]:
            errors.append(
                f"histogram {name}: +Inf bucket {buckets[-1][1]} != "
                f"_count {count[0][1]}")

    if errors:
        for e in errors:
            print(f"telemetry schema: FAIL: {path}: {e}")
        return 1
    print(f"telemetry schema: OK: {path}: {len(series)} prometheus series")
    return 0


def main() -> int:
    argv = sys.argv[1:]
    if not argv:
        print(__doc__)
        return 2
    prometheus = False
    path = None
    required = []
    base = "session"
    it = iter(argv)
    for arg in it:
        if arg == "--require":
            name = next(it, None)
            if name is None:
                print("--require needs a metric name")
                return 2
            required.append(name)
        elif arg == "--base":
            base = next(it, None)
            if base not in BASES:
                print(f"--base must be one of {sorted(BASES)}")
                return 2
        elif arg == "--prometheus":
            prometheus = True
        elif path is None:
            path = arg
        else:
            print(f"unknown argument {arg}")
            return 2
    if path is None:
        print("no input file")
        return 2
    base_counters, base_histograms = BASES[base]

    if prometheus:
        return check_prometheus(path, required)

    with open(path) as f:
        record = json.load(f)

    telem = record.get("telemetry")
    if telem is None:
        return fail(f"{path}: no top-level 'telemetry' block")
    for section in ("counters", "gauges", "histograms", "slow_queries",
                    "spans"):
        if section not in telem:
            return fail(f"{path}: telemetry block missing '{section}'")

    known = (set(telem["counters"]) | set(telem["gauges"])
             | set(telem["histograms"]))
    errors = []
    for name in base_counters:
        if name not in telem["counters"]:
            errors.append(f"required counter '{name}' absent")
    for name in base_histograms + required:
        if not require_satisfied(name, known):
            errors.append(f"required metric '{name}' absent")

    for name, h in sorted(telem["histograms"].items()):
        errors.extend(check_histogram(name, h))

    if errors:
        for e in errors:
            print(f"telemetry schema: FAIL: {path}: {e}")
        return 1
    print(f"telemetry schema: OK: {path}: "
          f"{len(telem['counters'])} counters, {len(telem['gauges'])} "
          f"gauges, {len(telem['histograms'])} histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
