#!/usr/bin/env python3
"""Validates the `telemetry` block a bench --json record ships.

Usage: check_telemetry_schema.py RECORD.json [--require NAME ...]

Every bench record carries the global registry's DumpJson() under a
top-level "telemetry" key (bench_util.h appends it at flush time). This
checker pins that contract so the observability surface cannot silently
rot:

  * the block exists and has the five sections (counters, gauges,
    histograms, slow_queries, spans);
  * a baseline set of metric names every query-serving run must emit is
    present (plan-cache counters, per-route counters/histograms);
  * additional required names can be demanded per bench with --require
    (e.g. the online bench must ship per-shard applier histograms);
  * every histogram is internally consistent: non-negative count/sum,
    min <= p50 <= p95 <= p99 <= max, cumulative buckets monotone
    non-decreasing with strictly increasing finite `le` edges, and the
    terminal "+Inf" bucket equal to the total count.

Exit 1 on any violation; the offending record and reason are printed.
"""

import json
import sys

# Metrics any run that served at least one query must have registered.
BASE_COUNTERS = [
    "session.prepares",
    "session.cache_hits",
    "session.executions",
    "query.route.relational",
    "query.route.graph",
    "query.route.dual",
    "query.route.view",
]
BASE_HISTOGRAMS = [
    "session.prepare_us",
    "session.execute_us",
]


def fail(msg: str) -> int:
    print(f"telemetry schema: FAIL: {msg}")
    return 1


def check_histogram(name: str, h) -> list:
    errs = []
    for key in ("count", "sum", "min", "max", "p50", "p95", "p99",
                "buckets"):
        if key not in h:
            errs.append(f"histogram {name}: missing field '{key}'")
    if errs:
        return errs
    if h["count"] < 0 or h["sum"] < 0:
        errs.append(f"histogram {name}: negative count/sum")
    if h["count"] > 0:
        order = [h["min"], h["p50"], h["p95"], h["p99"], h["max"]]
        if any(a > b for a, b in zip(order, order[1:])):
            errs.append(
                f"histogram {name}: quantiles out of order: {order}")
    buckets = h["buckets"]
    if not buckets or buckets[-1].get("le") != "+Inf":
        errs.append(f"histogram {name}: missing terminal +Inf bucket")
        return errs
    prev_le = None
    prev_count = 0
    for b in buckets:
        le, cum = b.get("le"), b.get("count")
        if cum is None or cum < prev_count:
            errs.append(
                f"histogram {name}: cumulative counts not monotone at "
                f"le={le}")
            break
        prev_count = cum
        if le == "+Inf":
            continue
        if prev_le is not None and not le > prev_le:
            errs.append(
                f"histogram {name}: bucket edges not increasing at "
                f"le={le}")
            break
        prev_le = le
    if buckets[-1]["count"] != h["count"]:
        errs.append(
            f"histogram {name}: +Inf bucket {buckets[-1]['count']} != "
            f"count {h['count']}")
    return errs


def main() -> int:
    argv = sys.argv[1:]
    if not argv:
        print(__doc__)
        return 2
    path = argv[0]
    required = []
    it = iter(argv[1:])
    for arg in it:
        if arg == "--require":
            name = next(it, None)
            if name is None:
                print("--require needs a metric name")
                return 2
            required.append(name)
        else:
            print(f"unknown argument {arg}")
            return 2

    with open(path) as f:
        record = json.load(f)

    telem = record.get("telemetry")
    if telem is None:
        return fail(f"{path}: no top-level 'telemetry' block")
    for section in ("counters", "gauges", "histograms", "slow_queries",
                    "spans"):
        if section not in telem:
            return fail(f"{path}: telemetry block missing '{section}'")

    known = (set(telem["counters"]) | set(telem["gauges"])
             | set(telem["histograms"]))
    errors = []
    for name in BASE_COUNTERS:
        if name not in telem["counters"]:
            errors.append(f"required counter '{name}' absent")
    for name in BASE_HISTOGRAMS + required:
        if name not in known:
            errors.append(f"required metric '{name}' absent")

    for name, h in sorted(telem["histograms"].items()):
        errors.extend(check_histogram(name, h))

    if errors:
        for e in errors:
            print(f"telemetry schema: FAIL: {path}: {e}")
        return 1
    print(f"telemetry schema: OK: {path}: "
          f"{len(telem['counters'])} counters, {len(telem['gauges'])} "
          f"gauges, {len(telem['histograms'])} histograms")
    return 0


if __name__ == "__main__":
    sys.exit(main())
