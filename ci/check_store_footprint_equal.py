#!/usr/bin/env python3
"""Asserts two bench_table1_store_scaling --json runs loaded identical stores.

Usage:
    check_store_footprint_equal.py serial.json parallel.json

The parallel load path (block-parallel generation + permutation/sub-shard
parallel BulkLoad) must produce a store byte-identical to the serial one,
so every deterministic metric must match EXACTLY — no tolerance:

  * storage table: triples, bytes_per_triple, storage_bytes, dict_bytes,
    index_bytes, index_nodes
  * table1 table:  triples, rel_tti_s, graph_tti_s, result_rows

Wall-clock columns (load_wall_ms, *_wall_ms, wall_ms, peak_rss_kb) are
machine-dependent and ignored. Exits non-zero listing every mismatch.
"""

import json
import sys

STORAGE_KEYS = [
    "triples",
    "bytes_per_triple",
    "storage_bytes",
    "dict_bytes",
    "index_bytes",
    "index_nodes",
]
TABLE1_KEYS = ["triples", "rel_tti_s", "graph_tti_s", "result_rows"]


def rows_by_step(doc, table):
    rows = doc.get("tables", {}).get(table, [])
    return {r.get("step"): r for r in rows}


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        serial = json.load(f)
    with open(sys.argv[2]) as f:
        parallel = json.load(f)

    failures = []
    for table, keys in (("storage", STORAGE_KEYS), ("table1", TABLE1_KEYS)):
        a = rows_by_step(serial, table)
        b = rows_by_step(parallel, table)
        if set(a) != set(b):
            failures.append(
                f"{table}: step sets differ ({sorted(a)} vs {sorted(b)})")
            continue
        if not a:
            failures.append(f"{table}: no rows in either run")
            continue
        for step in sorted(a):
            for key in keys:
                va, vb = a[step].get(key), b[step].get(key)
                if va != vb:
                    failures.append(
                        f"{table}[step {step}].{key}: serial={va} "
                        f"parallel={vb}")

    if failures:
        print("parallel load diverged from serial:", file=sys.stderr)
        for f_ in failures:
            print(f"  {f_}", file=sys.stderr)
        return 1
    print("parallel load footprint identical to serial "
          f"({len(rows_by_step(serial, 'storage'))} step(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
